package cleandb

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"cleandb/internal/datagen"
	"cleandb/internal/types"
)

// --- parameter binding -----------------------------------------------------

func TestQueryContextPositionalParams(t *testing.T) {
	db := demoDB()
	res, err := db.QueryContext(context.Background(),
		`SELECT c.name FROM customer c WHERE c.nationkey = ?`, int64(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows()) != 2 {
		t.Fatalf("rows = %v", res.Rows())
	}
}

func TestQueryContextNamedParams(t *testing.T) {
	db := demoDB()
	res, err := db.QueryContext(context.Background(),
		`SELECT c.name FROM customer c WHERE c.nationkey = :nation AND c.name = :who`,
		Named("who", "bob"), Named("NATION", 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows()) != 1 {
		t.Fatalf("rows = %v", res.Rows())
	}
}

func TestQueryContextParamErrors(t *testing.T) {
	db := demoDB()
	cases := []struct {
		name string
		q    string
		args []any
	}{
		{"missing positional", `SELECT c.name FROM customer c WHERE c.nationkey = ?`, nil},
		{"too many positional", `SELECT c.name FROM customer c WHERE c.nationkey = ?`, []any{1, 2}},
		{"missing named", `SELECT c.name FROM customer c WHERE c.nationkey = :n`, nil},
		{"unknown named", `SELECT c.name FROM customer c WHERE c.nationkey = :n`, []any{Named("n", 1), Named("bogus", 2)}},
		{"unsupported type", `SELECT c.name FROM customer c WHERE c.nationkey = ?`, []any{struct{}{}}},
	}
	for _, tc := range cases {
		if _, err := db.QueryContext(context.Background(), tc.q, tc.args...); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestStmtThetaParam(t *testing.T) {
	db := demoDB()
	stmt, err := db.PrepareStmt(`SELECT * FROM customer c DEDUP(attribute, LD, :theta, c.address, c.name)`)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := stmt.Exec(Named("theta", 0.3))
	if err != nil {
		t.Fatal(err)
	}
	strict, err := stmt.Exec(Named("theta", 0.99))
	if err != nil {
		t.Fatal(err)
	}
	if len(loose.Rows()) <= len(strict.Rows()) {
		t.Fatalf("loose theta found %d pairs, strict %d — expected loose > strict",
			len(loose.Rows()), len(strict.Rows()))
	}
}

// --- prepared statements and the plan cache --------------------------------

func TestPreparedOnceExecuteManyBindings(t *testing.T) {
	db := demoDB()
	stmt, err := db.PrepareStmt(`SELECT c.name FROM customer c WHERE c.nationkey = ?`)
	if err != nil {
		t.Fatal(err)
	}
	base := db.PlanCacheStats()
	if base.Misses != 1 || base.Hits != 0 {
		t.Fatalf("prepare should cost exactly one planning pass, stats = %+v", base)
	}
	counts := map[int64]int{1: 2, 2: 1, 3: 1, 4: 0}
	for i := 0; i < 100; i++ {
		nation := int64(i%4 + 1)
		res, err := stmt.ExecContext(context.Background(), nation)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(res.Rows()); got != counts[nation] {
			t.Fatalf("nation %d: rows = %d, want %d", nation, got, counts[nation])
		}
		if !res.Metrics().PlanCacheHit {
			t.Fatal("stmt execution should report plan reuse")
		}
	}
	// 100 executions must not have planned again: no further cache lookups
	// (Stmt bypasses the cache) and still exactly one miss overall.
	after := db.PlanCacheStats()
	if after.Misses != 1 {
		t.Fatalf("executions re-planned: stats = %+v", after)
	}
}

func TestQueryPathHitsPlanCache(t *testing.T) {
	db := demoDB()
	const q = `SELECT c.name FROM customer c WHERE c.nationkey = ?`
	for i := 0; i < 100; i++ {
		if _, err := db.QueryContext(context.Background(), q, int64(i%3+1)); err != nil {
			t.Fatal(err)
		}
	}
	cs := db.PlanCacheStats()
	if cs.Misses != 1 || cs.Hits != 99 {
		t.Fatalf("100 identical queries should plan once: stats = %+v", cs)
	}
	// Whitespace-insensitive normalization: same plan.
	if _, err := db.Query("SELECT c.name    FROM customer c\n\tWHERE c.nationkey = ?", int64(1)); err != nil {
		t.Fatal(err)
	}
	if cs := db.PlanCacheStats(); cs.Hits != 100 {
		t.Fatalf("whitespace variant should hit: stats = %+v", cs)
	}
}

func TestPlanCacheKeysRespectStringLiterals(t *testing.T) {
	db := demoDB()
	r1, err := db.Query(`SELECT c.name FROM customer c WHERE c.address = '12 oak st'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows()) != 2 {
		t.Fatalf("rows = %d", len(r1.Rows()))
	}
	// Same statement modulo whitespace *inside the string literal*: a
	// different query that must not collide with the cached plan.
	r2, err := db.Query(`SELECT c.name FROM customer c WHERE c.address = '12  oak st'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Rows()) != 0 {
		t.Fatalf("distinct literal served the cached plan: rows = %v", r2.Rows())
	}
	if cs := db.PlanCacheStats(); cs.Misses != 2 {
		t.Fatalf("expected two distinct plans, stats = %+v", cs)
	}
}

func TestPlanCachePurgedOnRegister(t *testing.T) {
	db := demoDB()
	if _, err := db.Query(`SELECT c.name FROM customer c`); err != nil {
		t.Fatal(err)
	}
	if cs := db.PlanCacheStats(); cs.Entries != 1 {
		t.Fatalf("stats = %+v", cs)
	}
	rows, _ := db.Rows("customer")
	db.RegisterRows("other", rows)
	// The old entry is unreachable (epoch changed) — it must be gone, not
	// pinning the previous catalog snapshot until LRU pressure.
	if cs := db.PlanCacheStats(); cs.Entries != 0 {
		t.Fatalf("register should purge orphaned plans, stats = %+v", cs)
	}
}

func TestPlanCacheInvalidatedByRegister(t *testing.T) {
	db := demoDB()
	const q = `SELECT c.name FROM customer c`
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows()) != 4 {
		t.Fatalf("rows = %d", len(res.Rows()))
	}
	// Re-registering the source must not serve the stale snapshot.
	rows, _ := db.Rows("customer")
	db.RegisterRows("customer", rows[:2])
	res, err = db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows()) != 2 {
		t.Fatalf("after re-register rows = %d, want 2", len(res.Rows()))
	}
	cs := db.PlanCacheStats()
	if cs.Misses != 2 {
		t.Fatalf("epoch change should force a re-plan: stats = %+v", cs)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	db := Open(WithWorkers(2), WithPlanCacheSize(0))
	rows, _ := demoDB().Rows("customer")
	db.RegisterRows("customer", rows)
	for i := 0; i < 3; i++ {
		if _, err := db.Query(`SELECT c.name FROM customer c`); err != nil {
			t.Fatal(err)
		}
	}
	if cs := db.PlanCacheStats(); cs.Hits != 0 || cs.Misses != 0 || cs.Entries != 0 {
		t.Fatalf("disabled cache should stay empty: %+v", cs)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	db := Open(WithWorkers(2), WithPlanCacheSize(2))
	rows, _ := demoDB().Rows("customer")
	db.RegisterRows("customer", rows)
	for _, nation := range []string{"1", "2", "3"} {
		if _, err := db.Query(`SELECT c.name FROM customer c WHERE c.nationkey = ` + nation); err != nil {
			t.Fatal(err)
		}
	}
	cs := db.PlanCacheStats()
	if cs.Entries != 2 {
		t.Fatalf("capacity 2 exceeded: %+v", cs)
	}
	// Oldest statement was evicted: querying it again is a miss.
	if _, err := db.Query(`SELECT c.name FROM customer c WHERE c.nationkey = 1`); err != nil {
		t.Fatal(err)
	}
	if after := db.PlanCacheStats(); after.Misses != cs.Misses+1 {
		t.Fatalf("evicted entry should miss: before %+v after %+v", cs, after)
	}
}

// --- per-query metrics -----------------------------------------------------

func TestResultMetricsPerQuery(t *testing.T) {
	db := demoDB()
	r1, err := db.Query(`SELECT c.name FROM customer c`)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db.Query(`SELECT * FROM customer c FD(c.address, c.nationkey)`)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := r1.Metrics(), r2.Metrics()
	if m1.SimTicks <= 0 || m2.SimTicks <= 0 {
		t.Fatalf("per-query ticks should be positive: %+v %+v", m1, m2)
	}
	if m2.ShuffledRecords == 0 {
		t.Fatalf("FD query should shuffle: %+v", m2)
	}
	// The instance-wide accumulators hold the sum of both queries.
	total := db.Metrics()
	if total.SimTicks != m1.SimTicks+m2.SimTicks {
		t.Fatalf("global ticks %d != %d + %d", total.SimTicks, m1.SimTicks, m2.SimTicks)
	}
	if m1.PlanCacheHit {
		t.Fatal("first execution of a statement is not a cache hit")
	}
	if r3, err := db.Query(`SELECT c.name FROM customer c`); err != nil {
		t.Fatal(err)
	} else if !r3.Metrics().PlanCacheHit {
		t.Fatal("repeated statement should report a cache hit")
	}
}

// --- memoized row views and TaskRowsOK -------------------------------------

func TestRowsMemoizedAndAppendSafe(t *testing.T) {
	db := demoDB()
	res, err := db.Query(`SELECT c.name FROM customer c`)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	n := len(rows)
	if n == 0 {
		t.Fatal("expected rows")
	}
	// The flat view is built once: repeated calls serve the same backing
	// array instead of an O(n) copy per call.
	again := res.Rows()
	if &rows[0] != &again[0] {
		t.Fatal("repeated Rows() calls should return the memoized slice")
	}
	// Appending cannot corrupt the Result: the memo has exact capacity, so
	// append reallocates into the caller's own array.
	_ = append(rows, rows[0], rows[0], rows[0])
	if len(res.Rows()) != n {
		t.Fatalf("internal result grew: %d -> %d", n, len(res.Rows()))
	}
	// Iter streams the same rows without materializing anything.
	i := 0
	for v, err := range res.Iter() {
		if err != nil {
			t.Fatalf("iter error: %v", err)
		}
		if !types.Equal(v, rows[i]) {
			t.Fatalf("Iter row %d = %v, want %v", i, v, rows[i])
		}
		i++
	}
	if i != n {
		t.Fatalf("Iter yielded %d rows, want %d", i, n)
	}
	if res.RowCount() != n {
		t.Fatalf("RowCount = %d, want %d", res.RowCount(), n)
	}
}

func TestTaskRowsOK(t *testing.T) {
	db := Open(WithWorkers(2), WithStandaloneOps())
	rows, _ := demoDB().Rows("customer")
	db.RegisterRows("customer", rows)
	res, err := db.Query(`
SELECT * FROM customer c
FD(c.address, c.nationkey)
DEDUP(attribute, LD, 0.99, c.phone)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.TaskRowsOK("nope"); ok {
		t.Fatal("unknown task should report ok=false")
	}
	// The strict DEDUP finds nothing, but the task exists: ok must be true —
	// the case the old nil-returning TaskRows could not distinguish.
	out, ok := res.TaskRowsOK("dedup1")
	if !ok {
		t.Fatal("existing task should report ok=true")
	}
	if len(out) != 0 {
		t.Fatalf("theta 0.99 on distinct phones should find nothing, got %v", out)
	}
	if res.TaskRows("nope") != nil {
		t.Fatal("TaskRows keeps returning nil for unknown tasks")
	}
}

// --- concurrency -----------------------------------------------------------

func TestConcurrentDBUse(t *testing.T) {
	db := Open(WithWorkers(4))
	rows, _ := demoDB().Rows("customer")
	db.RegisterRows("customer", rows)
	const goroutines = 8
	const iters = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := fmt.Sprintf("mine%d", g)
			for i := 0; i < iters; i++ {
				// Mix catalog writes, parameterized reads on the shared and
				// the private source, and metrics reads.
				db.RegisterRows(src, rows)
				q := fmt.Sprintf(`SELECT c.name FROM %s c WHERE c.nationkey = ?`, src)
				res, err := db.QueryContext(context.Background(), q, int64(1))
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows()) != 2 {
					errs <- fmt.Errorf("goroutine %d: rows = %d", g, len(res.Rows()))
					return
				}
				if _, err := db.QueryContext(context.Background(),
					`SELECT c.name FROM customer c WHERE c.nationkey = ?`, int64(i%4+1)); err != nil {
					errs <- err
					return
				}
				_ = db.Metrics()
				_ = db.PlanCacheStats()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestConcurrentStmtExec(t *testing.T) {
	db := demoDB()
	stmt, err := db.PrepareStmt(`SELECT c.name FROM customer c WHERE c.nationkey = ?`)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			want := map[int64]int{1: 2, 2: 1, 3: 1, 4: 0}
			for i := 0; i < 25; i++ {
				nation := int64((g+i)%4 + 1)
				res, err := stmt.Exec(nation)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows()) != want[nation] {
					errs <- fmt.Errorf("nation %d: rows = %d, want %d", nation, len(res.Rows()), want[nation])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// --- cancellation ----------------------------------------------------------

// thetaDB builds a DB whose DENIAL query runs a large theta self join —
// millions of candidate pairs, enough to still be mid-join when the test
// cancels it.
func thetaDB(t testing.TB, rows int) *DB {
	t.Helper()
	db := Open(WithWorkers(4))
	db.RegisterRows("lineitem", datagen.GenLineitem(datagen.LineitemConfig{Rows: rows, NoiseRate: 0.3, Seed: 7}))
	return db
}

const thetaQuery = `
SELECT * FROM lineitem t1
DENIAL(t2, t1.extendedprice < t2.extendedprice and t1.discount > t2.discount)`

func TestQueryContextPreCancelled(t *testing.T) {
	db := thetaDB(t, 200)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.QueryContext(ctx, thetaQuery)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestQueryContextCancelMidThetaJoin(t *testing.T) {
	db := thetaDB(t, 4000) // ~16M candidate pairs: runs for a long time
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := db.QueryContext(ctx, thetaQuery)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the join get going
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled query did not return")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation was not prompt: %v", elapsed)
	}

	// No leaked worker goroutines: every started worker exits through the
	// WaitGroup even when cancelled. Allow the runtime a moment to settle.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before %d, after %d", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestStmtExecContextDeadline(t *testing.T) {
	db := thetaDB(t, 4000)
	stmt, err := db.PrepareStmt(thetaQuery)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := stmt.ExecContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// --- explain with placeholders ---------------------------------------------

func TestExplainParameterizedStatement(t *testing.T) {
	db := demoDB()
	out, err := db.Explain(`SELECT c.name FROM customer c WHERE c.nationkey = :nation`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, ":nation") {
		t.Fatalf("explain should render the placeholder:\n%s", out)
	}
}
