package monoid

import (
	"fmt"
	"strconv"
	"strings"

	"cleandb/internal/textsim"
	"cleandb/internal/types"
)

// Env binds variable names to values during evaluation.
type Env struct {
	parent *Env
	name   string
	val    types.Value
}

// Bind extends the environment with one binding.
func (e *Env) Bind(name string, v types.Value) *Env {
	return &Env{parent: e, name: name, val: v}
}

// Lookup resolves a variable; it reports false for unbound names.
func (e *Env) Lookup(name string) (types.Value, bool) {
	for env := e; env != nil; env = env.parent {
		if env.name == name {
			return env.val, true
		}
	}
	return types.Null(), false
}

// Builtin is a registered scalar function callable from comprehensions.
type Builtin func(args []types.Value) (types.Value, error)

// DefaultBuiltins returns the builtin function registry shared by the
// evaluator and the physical compiler. It contains every function CleanM
// queries can call: prefix, tokenize, similarity predicates, string and date
// helpers.
func DefaultBuiltins() map[string]Builtin {
	return map[string]Builtin{
		// prefix(s [, n]) — the first n (default 3) bytes of s; used by FD
		// rules such as address → prefix(phone).
		"prefix": func(args []types.Value) (types.Value, error) {
			if len(args) < 1 {
				return types.Null(), fmt.Errorf("prefix: want 1 or 2 args, got %d", len(args))
			}
			n := 3
			if len(args) >= 2 {
				n = int(args[1].Int())
			}
			return types.String(textsim.Prefix(args[0].Str(), n)), nil
		},
		// tokenize(s, q) — the distinct q-grams of s as a list of strings.
		"tokenize": func(args []types.Value) (types.Value, error) {
			if len(args) != 2 {
				return types.Null(), fmt.Errorf("tokenize: want 2 args, got %d", len(args))
			}
			grams := textsim.UniqueQGrams(args[0].Str(), int(args[1].Int()))
			out := make([]types.Value, len(grams))
			for i, g := range grams {
				out[i] = types.String(g)
			}
			return types.ListOf(out), nil
		},
		// similar(metric, a, b, theta) — true when metric(a,b) > theta.
		"similar": func(args []types.Value) (types.Value, error) {
			if len(args) != 4 {
				return types.Null(), fmt.Errorf("similar: want 4 args, got %d", len(args))
			}
			m := textsim.ParseMetric(args[0].Str())
			return types.Bool(m.Above(args[1].Str(), args[2].Str(), args[3].Float())), nil
		},
		// similarity(metric, a, b) — the metric value in [0,1].
		"similarity": func(args []types.Value) (types.Value, error) {
			if len(args) != 3 {
				return types.Null(), fmt.Errorf("similarity: want 3 args, got %d", len(args))
			}
			m := textsim.ParseMetric(args[0].Str())
			return types.Float(m.Sim(args[1].Str(), args[2].Str())), nil
		},
		// levenshtein(a, b) — raw edit distance.
		"levenshtein": func(args []types.Value) (types.Value, error) {
			if len(args) != 2 {
				return types.Null(), fmt.Errorf("levenshtein: want 2 args, got %d", len(args))
			}
			return types.Int(int64(textsim.Levenshtein(args[0].Str(), args[1].Str()))), nil
		},
		// index(list, i) — the i-th element of a list (null out of range).
		"index": func(args []types.Value) (types.Value, error) {
			if len(args) != 2 {
				return types.Null(), fmt.Errorf("index: want 2 args, got %d", len(args))
			}
			l := args[0].List()
			i := int(args[1].Int())
			if i < 0 || i >= len(l) {
				return types.Null(), nil
			}
			return l[i], nil
		},
		// reckey(v) — the canonical key encoding of any value; used to order
		// records in pairwise self-joins (p1 < p2 avoids mirrored pairs).
		"reckey": func(args []types.Value) (types.Value, error) {
			if len(args) != 1 {
				return types.Null(), fmt.Errorf("reckey: want 1 arg, got %d", len(args))
			}
			return types.String(types.Key(args[0])), nil
		},
		"lower": strFn1("lower", strings.ToLower),
		"upper": strFn1("upper", strings.ToUpper),
		"trim":  strFn1("trim", strings.TrimSpace),
		"length": func(args []types.Value) (types.Value, error) {
			if len(args) != 1 {
				return types.Null(), fmt.Errorf("length: want 1 arg, got %d", len(args))
			}
			switch args[0].Kind() {
			case types.KindString:
				return types.Int(int64(len(args[0].Str()))), nil
			case types.KindList:
				return types.Int(int64(len(args[0].List()))), nil
			default:
				return types.Int(0), nil
			}
		},
		// split(s, sep) — list of substrings.
		"split": func(args []types.Value) (types.Value, error) {
			if len(args) != 2 {
				return types.Null(), fmt.Errorf("split: want 2 args, got %d", len(args))
			}
			parts := strings.Split(args[0].Str(), args[1].Str())
			out := make([]types.Value, len(parts))
			for i, p := range parts {
				out[i] = types.String(p)
			}
			return types.ListOf(out), nil
		},
		"concat": func(args []types.Value) (types.Value, error) {
			var sb strings.Builder
			for _, a := range args {
				sb.WriteString(a.String())
			}
			return types.String(sb.String()), nil
		},
		// year/month/day("YYYY-MM-DD") — date components as ints.
		"year":  dateFn("year", 0),
		"month": dateFn("month", 1),
		"day":   dateFn("day", 2),
		"abs": func(args []types.Value) (types.Value, error) {
			if len(args) != 1 {
				return types.Null(), fmt.Errorf("abs: want 1 arg, got %d", len(args))
			}
			v := args[0]
			if v.Kind() == types.KindFloat {
				f := v.Float()
				if f < 0 {
					f = -f
				}
				return types.Float(f), nil
			}
			i := v.Int()
			if i < 0 {
				i = -i
			}
			return types.Int(i), nil
		},
		// isnull(v) — true when v is null or an empty string.
		"isnull": func(args []types.Value) (types.Value, error) {
			if len(args) != 1 {
				return types.Null(), fmt.Errorf("isnull: want 1 arg, got %d", len(args))
			}
			v := args[0]
			return types.Bool(v.IsNull() || (v.Kind() == types.KindString && v.Str() == "")), nil
		},
		"toint": func(args []types.Value) (types.Value, error) {
			if len(args) != 1 {
				return types.Null(), fmt.Errorf("toint: want 1 arg, got %d", len(args))
			}
			v := args[0]
			if v.Kind() == types.KindString {
				i, err := strconv.ParseInt(strings.TrimSpace(v.Str()), 10, 64)
				if err != nil {
					return types.Null(), nil
				}
				return types.Int(i), nil
			}
			return types.Int(v.Int()), nil
		},
		"tofloat": func(args []types.Value) (types.Value, error) {
			if len(args) != 1 {
				return types.Null(), fmt.Errorf("tofloat: want 1 arg, got %d", len(args))
			}
			v := args[0]
			if v.Kind() == types.KindString {
				f, err := strconv.ParseFloat(strings.TrimSpace(v.Str()), 64)
				if err != nil {
					return types.Null(), nil
				}
				return types.Float(f), nil
			}
			return types.Float(v.Float()), nil
		},
	}
}

func strFn1(name string, f func(string) string) Builtin {
	return func(args []types.Value) (types.Value, error) {
		if len(args) != 1 {
			return types.Null(), fmt.Errorf("%s: want 1 arg, got %d", name, len(args))
		}
		return types.String(f(args[0].Str())), nil
	}
}

func dateFn(name string, part int) Builtin {
	return func(args []types.Value) (types.Value, error) {
		if len(args) != 1 {
			return types.Null(), fmt.Errorf("%s: want 1 arg, got %d", name, len(args))
		}
		pieces := strings.SplitN(args[0].Str(), "-", 3)
		if part >= len(pieces) {
			return types.Null(), nil
		}
		n, err := strconv.Atoi(pieces[part])
		if err != nil {
			return types.Null(), nil
		}
		return types.Int(int64(n)), nil
	}
}

// Evaluator evaluates expressions and comprehensions against an environment.
type Evaluator struct {
	Builtins map[string]Builtin
	// Sources resolves free variables that denote named datasets (scans);
	// consulted after the environment. May be nil.
	Sources func(name string) (types.Value, bool)
	// Params resolves Param placeholders; may be nil for parameterless
	// expressions.
	Params map[string]types.Value
}

// NewEvaluator returns an evaluator with the default builtin registry.
func NewEvaluator() *Evaluator {
	return &Evaluator{Builtins: DefaultBuiltins()}
}

// Eval evaluates e under env.
func (ev *Evaluator) Eval(e Expr, env *Env) (types.Value, error) {
	switch n := e.(type) {
	case *Const:
		return n.Val, nil
	case *Param:
		if v, ok := ev.Params[n.Key]; ok {
			return v, nil
		}
		return types.Null(), fmt.Errorf("monoid: unbound parameter %s", n)
	case *Var:
		if v, ok := env.Lookup(n.Name); ok {
			return v, nil
		}
		if ev.Sources != nil {
			if v, ok := ev.Sources(n.Name); ok {
				return v, nil
			}
		}
		return types.Null(), fmt.Errorf("monoid: unbound variable %q", n.Name)
	case *Field:
		rec, err := ev.Eval(n.Rec, env)
		if err != nil {
			return types.Null(), err
		}
		return rec.Field(n.Name), nil
	case *BinOp:
		return ev.evalBinOp(n, env)
	case *UnOp:
		v, err := ev.Eval(n.E, env)
		if err != nil {
			return types.Null(), err
		}
		switch n.Op {
		case "not":
			return types.Bool(!v.Bool()), nil
		case "-":
			if v.Kind() == types.KindFloat {
				return types.Float(-v.Float()), nil
			}
			return types.Int(-v.Int()), nil
		default:
			return types.Null(), fmt.Errorf("monoid: unknown unary operator %q", n.Op)
		}
	case *Call:
		fn, ok := ev.Builtins[n.Fn]
		if !ok {
			return types.Null(), fmt.Errorf("monoid: unknown function %q", n.Fn)
		}
		args := make([]types.Value, len(n.Args))
		for i, a := range n.Args {
			v, err := ev.Eval(a, env)
			if err != nil {
				return types.Null(), err
			}
			args[i] = v
		}
		return fn(args)
	case *If:
		c, err := ev.Eval(n.Cond, env)
		if err != nil {
			return types.Null(), err
		}
		if c.Bool() {
			return ev.Eval(n.Then, env)
		}
		return ev.Eval(n.Else, env)
	case *RecordCtor:
		fields := make([]types.Value, len(n.Fields))
		for i, f := range n.Fields {
			v, err := ev.Eval(f, env)
			if err != nil {
				return types.Null(), err
			}
			fields[i] = v
		}
		return types.NewRecord(n.Schema(), fields), nil
	case *ListCtor:
		elems := make([]types.Value, len(n.Elems))
		for i, el := range n.Elems {
			v, err := ev.Eval(el, env)
			if err != nil {
				return types.Null(), err
			}
			elems[i] = v
		}
		return types.ListOf(elems), nil
	case *Comprehension:
		return ev.EvalComprehension(n, env)
	case *Exists:
		v, err := ev.EvalComprehension(&Comprehension{M: Any, Head: CBool(true), Quals: n.C.Quals}, env)
		if err != nil {
			return types.Null(), err
		}
		return v, nil
	default:
		return types.Null(), fmt.Errorf("monoid: cannot evaluate %T", e)
	}
}

func (ev *Evaluator) evalBinOp(n *BinOp, env *Env) (types.Value, error) {
	// "merge:<monoid>" joins the results of two comprehensions produced by
	// the normalizer's if-split rule.
	if strings.HasPrefix(n.Op, "merge:") {
		m, ok := ByName(strings.TrimPrefix(n.Op, "merge:"))
		if !ok {
			return types.Null(), fmt.Errorf("monoid: unknown merge monoid %q", n.Op)
		}
		l, err := ev.Eval(n.L, env)
		if err != nil {
			return types.Null(), err
		}
		r, err := ev.Eval(n.R, env)
		if err != nil {
			return types.Null(), err
		}
		return m.Merge(l, r), nil
	}
	// Short-circuit boolean operators.
	if n.Op == "and" || n.Op == "or" {
		l, err := ev.Eval(n.L, env)
		if err != nil {
			return types.Null(), err
		}
		if n.Op == "and" && !l.Bool() {
			return types.Bool(false), nil
		}
		if n.Op == "or" && l.Bool() {
			return types.Bool(true), nil
		}
		r, err := ev.Eval(n.R, env)
		if err != nil {
			return types.Null(), err
		}
		return types.Bool(r.Bool()), nil
	}
	l, err := ev.Eval(n.L, env)
	if err != nil {
		return types.Null(), err
	}
	r, err := ev.Eval(n.R, env)
	if err != nil {
		return types.Null(), err
	}
	return ApplyBinOp(n.Op, l, r)
}

// ApplyBinOp evaluates a binary operator over two values. It is shared by
// the evaluator and the compiled-expression runtime.
func ApplyBinOp(op string, l, r types.Value) (types.Value, error) {
	switch op {
	case "+":
		if l.Kind() == types.KindString || r.Kind() == types.KindString {
			return types.String(l.String() + r.String()), nil
		}
		if l.Kind() == types.KindFloat || r.Kind() == types.KindFloat {
			return types.Float(l.Float() + r.Float()), nil
		}
		return types.Int(l.Int() + r.Int()), nil
	case "-":
		if l.Kind() == types.KindFloat || r.Kind() == types.KindFloat {
			return types.Float(l.Float() - r.Float()), nil
		}
		return types.Int(l.Int() - r.Int()), nil
	case "*":
		if l.Kind() == types.KindFloat || r.Kind() == types.KindFloat {
			return types.Float(l.Float() * r.Float()), nil
		}
		return types.Int(l.Int() * r.Int()), nil
	case "/":
		if l.Kind() == types.KindFloat || r.Kind() == types.KindFloat {
			d := r.Float()
			if d == 0 {
				return types.Null(), nil
			}
			return types.Float(l.Float() / d), nil
		}
		if r.Int() == 0 {
			return types.Null(), nil
		}
		return types.Int(l.Int() / r.Int()), nil
	case "%":
		if r.Int() == 0 {
			return types.Null(), nil
		}
		return types.Int(l.Int() % r.Int()), nil
	case "==":
		return types.Bool(types.Equal(l, r)), nil
	case "!=":
		return types.Bool(!types.Equal(l, r)), nil
	case "<":
		return types.Bool(types.Compare(l, r) < 0), nil
	case "<=":
		return types.Bool(types.Compare(l, r) <= 0), nil
	case ">":
		return types.Bool(types.Compare(l, r) > 0), nil
	case ">=":
		return types.Bool(types.Compare(l, r) >= 0), nil
	default:
		return types.Null(), fmt.Errorf("monoid: unknown operator %q", op)
	}
}

// EvalComprehension folds the comprehension under env: qualifiers are
// processed left to right, nesting loops for generators, and the head values
// are merged through the monoid.
func (ev *Evaluator) EvalComprehension(c *Comprehension, env *Env) (types.Value, error) {
	acc := c.M.Zero()
	var step func(i int, env *Env) error
	step = func(i int, env *Env) error {
		if i == len(c.Quals) {
			h, err := ev.Eval(c.Head, env)
			if err != nil {
				return err
			}
			acc = c.M.Merge(acc, c.M.Unit(h))
			return nil
		}
		switch q := c.Quals[i].(type) {
		case *Generator:
			src, err := ev.Eval(q.Source, env)
			if err != nil {
				return err
			}
			if src.IsNull() {
				return nil
			}
			if src.Kind() != types.KindList {
				return &TypeError{Op: "generator " + q.Var, Got: src.Kind(), Want: "list"}
			}
			for _, v := range src.List() {
				if err := step(i+1, env.Bind(q.Var, v)); err != nil {
					return err
				}
				// Early exit for short-circuiting boolean monoids.
				if c.M == Any && acc.Bool() {
					return nil
				}
				if c.M == All && !acc.Bool() {
					return nil
				}
			}
			return nil
		case *Pred:
			v, err := ev.Eval(q.Cond, env)
			if err != nil {
				return err
			}
			if !v.Bool() {
				return nil
			}
			return step(i+1, env)
		case *Let:
			v, err := ev.Eval(q.E, env)
			if err != nil {
				return err
			}
			return step(i+1, env.Bind(q.Var, v))
		default:
			return fmt.Errorf("monoid: unknown qualifier %T", q)
		}
	}
	if err := step(0, env); err != nil {
		return types.Null(), err
	}
	return acc, nil
}
