package incr

import (
	"sort"

	"cleandb/internal/engine"
	"cleandb/internal/types"
)

// DedupDelta re-derives a DEDUP operator's pair set for the rows a delta
// pass marks fresh, without re-running the grouping plan. The closures are
// compiled by the core layer from the analyzed DedupSpec, so blocking,
// filtering and the similarity predicate are exactly the desugared
// comprehension's semantics; only append-stable blockers (whose keys depend
// on nothing but the row itself) may be driven through here — a fitted
// blocker that re-clusters old rows on new data must fall back to a full
// run.
type DedupDelta struct {
	// Keep is the WHERE filter over a source row; nil keeps everything.
	Keep func(types.Value) bool
	// BlockKeys maps a kept row to its comparison-block keys.
	BlockKeys func(types.Value) ([]string, error)
	// Pair is the similarity predicate over an ordered candidate pair.
	Pair func(a, b types.Value) (bool, error)
}

// Pairs enumerates the duplicate pairs that touch at least one fresh row:
// within every block, each (i, j) member pair with a fresh member is charged
// one comparison — the same per-candidate accounting cleaning.Dedup applies
// to its intra-block loops — and evaluated with the similarity predicate.
// Pairs are reported once even when blocks overlap, ordered (a, b) by
// canonical record key with identical records excluded, exactly the
// comprehension's reckey(p1) < reckey(p2) discipline. Rows are taken in the
// dataset's global order, so together with a prior run's pair set over the
// old rows the result reproduces the full pass's set.
func (d DedupDelta) Pairs(ds *engine.Dataset, fresh func(i int, v types.Value) bool) ([][2]types.Value, error) {
	ctx := ds.Context()
	rows := ds.Collect()

	// Block map over the kept rows; member lists stay in global row order.
	blocks := map[string][]int{}
	freshMask := make([]bool, len(rows))
	keyOf := make([]string, len(rows))
	anyFresh := false
	for i, v := range rows {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if d.Keep != nil && !d.Keep(v) {
			continue
		}
		if fresh(i, v) {
			freshMask[i] = true
			anyFresh = true
		}
		keyOf[i] = types.Key(v)
		keys, err := d.BlockKeys(v)
		if err != nil {
			return nil, err
		}
		seenKey := map[string]bool{}
		for _, k := range keys {
			if seenKey[k] {
				continue
			}
			seenKey[k] = true
			blocks[k] = append(blocks[k], i)
		}
	}
	if !anyFresh {
		return nil, nil
	}
	// Record the pass in the strategy ledger alongside the clustering
	// strategies it substitutes for.
	ctx.Metrics().NoteStrategy("dedup:delta-block")

	// Deterministic block order so ties and budget aborts are reproducible.
	names := make([]string, 0, len(blocks))
	for k := range blocks {
		names = append(names, k)
	}
	sort.Strings(names)

	seenPair := map[string]bool{}
	var out [][2]types.Value
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		members := blocks[name]
		blockFresh := false
		for _, i := range members {
			if freshMask[i] {
				blockFresh = true
				break
			}
		}
		if !blockFresh {
			continue // fully-old block: its pairs are all in the cached view
		}
		for ai := 0; ai < len(members); ai++ {
			for bi := ai + 1; bi < len(members); bi++ {
				i, j := members[ai], members[bi]
				if !freshMask[i] && !freshMask[j] {
					continue // old×old: already in the cached view
				}
				if err := ctx.ChargeComparisons(1); err != nil {
					return nil, err
				}
				a, b := rows[i], rows[j]
				ka, kb := keyOf[i], keyOf[j]
				if ka == kb {
					continue // identical records: reckey < excludes them
				}
				if kb < ka {
					a, b = b, a
					ka, kb = kb, ka
				}
				pk := ka + "\x00" + kb
				if seenPair[pk] {
					continue // found in an earlier overlapping block
				}
				ok, err := d.Pair(a, b)
				if err != nil {
					return nil, err
				}
				if ok {
					seenPair[pk] = true
					out = append(out, [2]types.Value{a, b})
				}
			}
		}
	}
	return out, nil
}
