// Package datagen produces the deterministic synthetic datasets the
// experiment suite uses in place of the paper's TPC-H, DBLP and Microsoft
// Academic Graph inputs (see DESIGN.md, substitutions). Every generator is
// seeded, so experiments are reproducible; noise procedures follow the
// paper's §8 setup:
//
//   - TPC-H lineitem with 10% noise on orderkey (or discount) drawn from the
//     smallest scale factor's domain, so skew grows with dataset size;
//   - TPC-H customer with Zipf-distributed duplicate counts and randomly
//     edited name/phone values;
//   - DBLP-style hierarchical publications with misspelled author names at a
//     configurable noise rate, plus the clean-name dictionary;
//   - MAG-style Paper⋈Author⋈Affiliation rows with duplicate publications
//     (title/DOI variations, missing fields) and heavy value skew.
package datagen

import (
	"fmt"
	"math/rand"

	"cleandb/internal/types"
)

// alphabet used for random edits.
const alphabet = "abcdefghijklmnopqrstuvwxyz"

// Corrupt applies random character edits (substitute/insert/delete with
// equal probability) to roughly rate·len(s) positions of s. rate 0.2 matches
// the paper's "noise by a factor of 20%".
func Corrupt(s string, rate float64, rng *rand.Rand) string {
	if s == "" || rate <= 0 {
		return s
	}
	edits := int(float64(len(s))*rate + 0.5)
	if edits < 1 {
		edits = 1
	}
	out := []byte(s)
	for e := 0; e < edits; e++ {
		if len(out) == 0 {
			out = append(out, alphabet[rng.Intn(len(alphabet))])
			continue
		}
		pos := rng.Intn(len(out))
		switch rng.Intn(3) {
		case 0: // substitute
			out[pos] = alphabet[rng.Intn(len(alphabet))]
		case 1: // insert
			out = append(out[:pos], append([]byte{alphabet[rng.Intn(len(alphabet))]}, out[pos:]...)...)
		default: // delete
			out = append(out[:pos], out[pos+1:]...)
		}
	}
	if len(out) == 0 {
		return string(alphabet[rng.Intn(len(alphabet))])
	}
	return string(out)
}

// ---------------------------------------------------------------------------
// TPC-H lineitem
// ---------------------------------------------------------------------------

// LineitemSchema is the schema of generated lineitem records.
var LineitemSchema = types.NewSchema(
	"orderkey", "linenumber", "suppkey", "quantity", "extendedprice",
	"discount", "shipdate", "receiptdate",
)

// LineitemConfig parameterizes GenLineitem.
type LineitemConfig struct {
	// Rows is the number of lineitem records.
	Rows int
	// BaseRows is the row count of the smallest scale factor; noisy key
	// values are drawn from its domain so that skew increases with Rows
	// (paper §8 setup).
	BaseRows int
	// NoiseRate is the fraction of rows that receive a noisy orderkey
	// (default 0.10).
	NoiseRate float64
	// NoiseDiscount, when true, perturbs discount instead of orderkey.
	NoiseDiscount bool
	// MissingQuantityRate leaves the quantity field null on a fraction of
	// rows (used by the transformation experiment's fill-missing task).
	MissingQuantityRate float64
	// Seed makes generation deterministic.
	Seed int64
}

// linesPerOrder mirrors TPC-H's up-to-7 lineitems per order.
const linesPerOrder = 7

// suppliers in the generated domain.
const suppliers = 1000

// GenLineitem generates lineitem rows. In clean rows the functional
// dependency (orderkey, linenumber) → suppkey holds by construction; noisy
// rows re-draw orderkey from the base domain, creating both violations and
// growing key skew.
func GenLineitem(cfg LineitemConfig) []types.Value {
	if cfg.BaseRows <= 0 {
		cfg.BaseRows = cfg.Rows
	}
	if cfg.NoiseRate == 0 {
		cfg.NoiseRate = 0.10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	baseOrders := cfg.BaseRows/linesPerOrder + 1
	out := make([]types.Value, 0, cfg.Rows)
	for i := 0; i < cfg.Rows; i++ {
		orderkey := int64(i/linesPerOrder + 1)
		linenumber := int64(i%linesPerOrder + 1)
		// suppkey is a deterministic function of (orderkey, linenumber), so
		// the FD holds on clean data.
		suppkey := (orderkey*31+linenumber*17)%suppliers + 1
		price := 900.0 + float64((orderkey*7919+linenumber*104729)%100000)/10.0
		discount := float64((orderkey+linenumber)%11) / 100.0
		quantity := types.Value(types.Float(float64((orderkey*13+linenumber)%50 + 1)))
		y, m, d := dateOf(int(orderkey) + int(linenumber))
		ship := fmt.Sprintf("%04d-%02d-%02d", y, m, d)
		y2, m2, d2 := dateOf(int(orderkey) + int(linenumber) + 30)
		receipt := fmt.Sprintf("%04d-%02d-%02d", y2, m2, d2)

		if rng.Float64() < cfg.NoiseRate {
			if cfg.NoiseDiscount {
				discount = float64(rng.Intn(11)) / 100.0
			} else {
				// Draw from the base domain: as Rows grows beyond BaseRows,
				// these keys repeat more often — skew increases with size.
				orderkey = int64(rng.Intn(baseOrders) + 1)
			}
		}
		if cfg.MissingQuantityRate > 0 && rng.Float64() < cfg.MissingQuantityRate {
			quantity = types.Null()
		}
		out = append(out, types.NewRecord(LineitemSchema, []types.Value{
			types.Int(orderkey), types.Int(linenumber), types.Int(suppkey),
			quantity, types.Float(price), types.Float(discount),
			types.String(ship), types.String(receipt),
		}))
	}
	return out
}

func dateOf(n int) (y, m, d int) {
	y = 1992 + (n/372)%7
	m = (n/31)%12 + 1
	d = n%28 + 1
	return
}

// ---------------------------------------------------------------------------
// TPC-H customer
// ---------------------------------------------------------------------------

// CustomerSchema is the schema of generated customer records.
var CustomerSchema = types.NewSchema("custkey", "name", "address", "nationkey", "phone")

// CustomerConfig parameterizes GenCustomer.
type CustomerConfig struct {
	// Rows is the number of base (clean) customers.
	Rows int
	// DupRate is the fraction of customers that receive duplicates
	// (paper: 10%).
	DupRate float64
	// MaxDups bounds the Zipf-distributed duplicate count per customer
	// (paper: 50 or 100).
	MaxDups int
	// Seed makes generation deterministic.
	Seed int64
}

// CustomerData is the generated dataset plus its ground truth.
type CustomerData struct {
	Rows []types.Value
	// DupPairs lists (original custkey, duplicate custkey) ground truth.
	DupPairs [][2]int64
}

var streets = []string{"oak st", "elm ave", "pine rd", "maple dr", "cedar ln", "birch way", "walnut blvd", "spruce ct"}

var firstNames = []string{
	"james", "mary", "robert", "patricia", "john", "jennifer", "michael", "linda",
	"david", "elizabeth", "william", "barbara", "richard", "susan", "joseph", "jessica",
	"thomas", "sarah", "charles", "karen", "christopher", "lisa", "daniel", "nancy",
	"matthew", "betty", "anthony", "margaret", "mark", "sandra", "donald", "ashley",
}

var lastNames = []string{
	"smith", "johnson", "williams", "brown", "jones", "garcia", "miller", "davis",
	"rodriguez", "martinez", "hernandez", "lopez", "gonzalez", "wilson", "anderson",
	"thomas", "taylor", "moore", "jackson", "martin", "lee", "perez", "thompson",
	"white", "harris", "sanchez", "clark", "ramirez", "lewis", "robinson", "walker",
}

// GenCustomer generates customers plus Zipf-duplicated noisy copies. In the
// clean base, address → prefix(phone) and address → nationkey both hold
// (each customer has a unique address and the phone prefix encodes the
// nation). Duplicates share the address but carry edited name and phone
// (always) and a changed nationkey (half the time), creating FD violations
// and similarity-detectable duplicates — the paper's customer setup.
func GenCustomer(cfg CustomerConfig) CustomerData {
	if cfg.DupRate == 0 {
		cfg.DupRate = 0.10
	}
	if cfg.MaxDups <= 0 {
		cfg.MaxDups = 50
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, 1.5, 1, uint64(cfg.MaxDups-1))
	var data CustomerData
	nextKey := int64(1)
	for i := 0; i < cfg.Rows; i++ {
		name := firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
		address := fmt.Sprintf("%d %s", i+1, streets[i%len(streets)])
		nation := int64(i % 25)
		phone := fmt.Sprintf("%02d-%03d-%04d", nation+10, rng.Intn(1000), rng.Intn(10000))
		orig := nextKey
		nextKey++
		data.Rows = append(data.Rows, types.NewRecord(CustomerSchema, []types.Value{
			types.Int(orig), types.String(name), types.String(address),
			types.Int(nation), types.String(phone),
		}))
		if rng.Float64() >= cfg.DupRate {
			continue
		}
		ndups := int(zipf.Uint64()) + 1
		for d := 0; d < ndups; d++ {
			dupKey := nextKey
			nextKey++
			dupName := Corrupt(name, 0.15, rng)
			dupPhone := fmt.Sprintf("%02d-%03d-%04d", rng.Intn(25)+10, rng.Intn(1000), rng.Intn(10000))
			dupNation := nation
			if rng.Intn(2) == 0 {
				dupNation = int64(rng.Intn(25))
			}
			data.Rows = append(data.Rows, types.NewRecord(CustomerSchema, []types.Value{
				types.Int(dupKey), types.String(dupName), types.String(address),
				types.Int(dupNation), types.String(dupPhone),
			}))
			data.DupPairs = append(data.DupPairs, [2]int64{orig, dupKey})
		}
	}
	return data
}
