// Package engine is CleanDB's scale-out execution substrate — the stand-in
// for the Spark runtime used by the CleanM paper (VLDB 2017).
//
// A Dataset is a partitioned collection of values. Narrow operators (map,
// filter, flatMap, mapPartitions) run per partition on a bounded pool of
// worker goroutines. Wide operators model the three shuffle strategies the
// paper contrasts:
//
//   - AggregateByKey — CleanDB's strategy: combine locally per partition,
//     shuffle only the (key, partial-aggregate) pairs, then merge. Minimal
//     cross-node traffic; resilient to key skew.
//   - SortShuffleGroup — Spark SQL's sort-based aggregation: range-partition
//     every record by key, sort locally, aggregate runs. Heavy keys overload
//     a single range and create stragglers.
//   - HashShuffleGroup — BigDansing-style hash shuffle: hash-partition every
//     record, group at the reducer. Full shuffle volume, skew-sensitive.
//
// Every operator records a Stage in the Context's Metrics with per-worker
// costs; SimTicks (the sum over stages of the maximum worker cost) is a
// deterministic wall-clock proxy that exposes skew and straggler effects
// regardless of the host machine, while the goroutine pool also provides real
// multicore speedups.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"cleandb/internal/data"
	"cleandb/internal/types"
)

// ErrBudgetExceeded is returned by expensive operators (cartesian products,
// pruning-free theta joins) when the Context's comparison budget is spent.
// The experiment harness reports such runs as DNF ("did not finish"), which
// is how the paper reports Spark SQL and BigDansing on rule ψ and MAG.
var ErrBudgetExceeded = errors.New("engine: comparison budget exceeded")

// Context carries the cluster configuration, the cost-model metrics and the
// optional work budget for a job.
type Context struct {
	// Workers is the simulated cluster width: number of partitions created
	// by default and the bound on concurrently running partition tasks.
	Workers int

	// CompBudget, when positive, bounds the number of pairwise comparisons
	// a single job may perform before ErrBudgetExceeded is reported.
	CompBudget int64

	// goctx, when non-nil, carries cancellation and deadlines for the job.
	// Operator loops poll it and abort promptly once it is done.
	goctx context.Context

	// exchange, when non-nil, distributes masked wide stages across a
	// cleaning cluster (see Exchange in exchange.go). Nil means every slot
	// runs locally — the single-process path.
	exchange Exchange
	// stageSeq numbers masked stages in plan order so every node of a
	// distributed job derives identical stage identifiers.
	stageSeq atomic.Int64
	// failed holds the first job-poisoning error reported via Fail.
	failed atomic.Pointer[failBox]

	metrics Metrics
}

// NewContext returns a context with the given number of workers.
func NewContext(workers int) *Context {
	if workers < 1 {
		workers = 1
	}
	return &Context{Workers: workers}
}

// Job derives a child context for one query: same cluster width and
// comparison budget, fresh metrics (so per-query costs are measured in
// isolation), and bound to goctx for cancellation. Merge the job's metrics
// back into a global collector with Metrics.Merge when the query completes.
func (c *Context) Job(goctx context.Context) *Context {
	j := &Context{Workers: c.Workers, CompBudget: c.CompBudget}
	if goctx != nil {
		if ex, ok := goctx.Value(exchangeCtxKey{}).(Exchange); ok {
			j.exchange = ex
		}
	}
	if goctx == context.Background() {
		goctx = nil
	}
	j.goctx = goctx
	return j
}

// Err reports whether the job may keep running: nil while it may, the
// poisoning error after Fail, or the Go context's cancellation error
// (context.Canceled / context.DeadlineExceeded) after cancellation.
func (c *Context) Err() error {
	if b := c.failed.Load(); b != nil {
		return b.err
	}
	if c.goctx == nil {
		return nil
	}
	return c.goctx.Err()
}

// Metrics accumulates cost-model counters for a job.
type Metrics struct {
	mu         sync.Mutex
	stages     []StageStats
	strategies map[string]int64

	recordsProcessed atomic.Int64
	shuffledRecords  atomic.Int64
	shuffledBytes    atomic.Int64
	comparisons      atomic.Int64

	batchesEvaluated atomic.Int64
	dictHits         atomic.Int64
	dictMisses       atomic.Int64
	simCacheHits     atomic.Int64
	simCacheMisses   atomic.Int64
}

// StageStats describes one executed stage.
type StageStats struct {
	Name            string
	WorkerCosts     []int64
	ShuffledRecords int64
	ShuffledBytes   int64
}

// MaxCost returns the straggler cost of the stage.
func (s StageStats) MaxCost() int64 {
	var m int64
	for _, c := range s.WorkerCosts {
		if c > m {
			m = c
		}
	}
	return m
}

// TotalCost returns the summed worker cost of the stage.
func (s StageStats) TotalCost() int64 {
	var t int64
	for _, c := range s.WorkerCosts {
		t += c
	}
	return t
}

// Metrics returns the context's metrics collector.
func (c *Context) Metrics() *Metrics { return &c.metrics }

// Reset clears all counters and stage logs.
func (m *Metrics) Reset() {
	m.mu.Lock()
	m.stages = nil
	m.strategies = nil
	m.mu.Unlock()
	m.recordsProcessed.Store(0)
	m.shuffledRecords.Store(0)
	m.shuffledBytes.Store(0)
	m.comparisons.Store(0)
	m.batchesEvaluated.Store(0)
	m.dictHits.Store(0)
	m.dictMisses.Store(0)
	m.simCacheHits.Store(0)
	m.simCacheMisses.Store(0)
}

// BatchesEvaluated returns how many column batches were evaluated by
// vectorized kernels instead of row-at-a-time interpretation.
func (m *Metrics) BatchesEvaluated() int64 { return m.batchesEvaluated.Load() }

// AddDictStats folds string-dictionary interning counters in: hits found an
// existing entry, misses allocated one.
func (m *Metrics) AddDictStats(hits, misses int64) {
	m.dictHits.Add(hits)
	m.dictMisses.Add(misses)
}

// DictStats returns the dictionary interning counters.
func (m *Metrics) DictStats() (hits, misses int64) {
	return m.dictHits.Load(), m.dictMisses.Load()
}

// AddSimCacheStats folds pair-similarity cache counters in.
func (m *Metrics) AddSimCacheStats(hits, misses int64) {
	m.simCacheHits.Add(hits)
	m.simCacheMisses.Add(misses)
}

// SimCacheStats returns the pair-similarity cache counters.
func (m *Metrics) SimCacheStats() (hits, misses int64) {
	return m.simCacheHits.Load(), m.simCacheMisses.Load()
}

// NoteStrategy records that the planner chose the named execution strategy
// (e.g. "theta:mbucket", "group:aggregate-by-key") once, making the
// stats-driven choices observable in Result.Metrics and /metrics.
func (m *Metrics) NoteStrategy(name string) {
	m.mu.Lock()
	if m.strategies == nil {
		m.strategies = make(map[string]int64)
	}
	m.strategies[name]++
	m.mu.Unlock()
}

// Strategies returns a copy of the strategy-choice counters.
func (m *Metrics) Strategies() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.strategies) == 0 {
		return nil
	}
	out := make(map[string]int64, len(m.strategies))
	for k, v := range m.strategies {
		out[k] = v
	}
	return out
}

// AddComparisons counts n pairwise (similarity or predicate) comparisons.
func (m *Metrics) AddComparisons(n int64) { m.comparisons.Add(n) }

// Comparisons returns the pairwise-comparison count.
func (m *Metrics) Comparisons() int64 { return m.comparisons.Load() }

// RecordsProcessed returns the total records touched by narrow operators.
func (m *Metrics) RecordsProcessed() int64 { return m.recordsProcessed.Load() }

// ShuffledRecords returns the total records moved across the simulated network.
func (m *Metrics) ShuffledRecords() int64 { return m.shuffledRecords.Load() }

// ShuffledBytes returns the estimated bytes moved across the simulated network.
func (m *Metrics) ShuffledBytes() int64 { return m.shuffledBytes.Load() }

// Stages returns a copy of the stage log.
func (m *Metrics) Stages() []StageStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]StageStats, len(m.stages))
	copy(out, m.stages)
	return out
}

// SimTicks is the deterministic wall-clock proxy: the sum over stages of the
// maximum per-worker cost (a stage finishes when its straggler finishes),
// plus a network term proportional to shuffled records.
func (m *Metrics) SimTicks() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t int64
	for _, s := range m.stages {
		t += s.MaxCost()
		// Network transfer term: shuffling is spread over workers but
		// serialization/deserialization costs scale with volume.
		t += s.ShuffledRecords / 2
	}
	return t
}

// TotalCost returns the summed worker cost over all stages. Together with
// MaxStageCost it yields the straggler ratio the experiments use for
// skew-induced DNF detection: a run whose busiest worker exceeds a small
// multiple of the fair per-worker share models a cluster losing a node to
// overload.
func (m *Metrics) TotalCost() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t int64
	for _, s := range m.stages {
		t += s.TotalCost()
	}
	return t
}

// MaxStageCost returns the largest single-worker stage cost observed — the
// straggler load. The experiment harness uses it to detect runs that a real
// cluster would lose to an overloaded node (skew-induced DNFs).
func (m *Metrics) MaxStageCost() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var mx int64
	for _, s := range m.stages {
		if c := s.MaxCost(); c > mx {
			mx = c
		}
	}
	return mx
}

// Merge folds the counters and stage log of src into m. Per-query job
// contexts (Context.Job) collect metrics in isolation; merging them into the
// instance-wide collector afterwards keeps cumulative totals meaningful.
func (m *Metrics) Merge(src *Metrics) {
	if src == nil || src == m {
		return
	}
	stages := src.Stages()
	strategies := src.Strategies()
	m.mu.Lock()
	m.stages = append(m.stages, stages...)
	if len(strategies) > 0 {
		if m.strategies == nil {
			m.strategies = make(map[string]int64, len(strategies))
		}
		for k, v := range strategies {
			m.strategies[k] += v
		}
	}
	m.mu.Unlock()
	m.recordsProcessed.Add(src.recordsProcessed.Load())
	m.shuffledRecords.Add(src.shuffledRecords.Load())
	m.shuffledBytes.Add(src.shuffledBytes.Load())
	m.comparisons.Add(src.comparisons.Load())
	m.batchesEvaluated.Add(src.batchesEvaluated.Load())
	m.dictHits.Add(src.dictHits.Load())
	m.dictMisses.Add(src.dictMisses.Load())
	m.simCacheHits.Add(src.simCacheHits.Load())
	m.simCacheMisses.Add(src.simCacheMisses.Load())
}

func (m *Metrics) logStage(s StageStats) {
	m.mu.Lock()
	m.stages = append(m.stages, s)
	m.mu.Unlock()
	m.shuffledRecords.Add(s.ShuffledRecords)
	m.shuffledBytes.Add(s.ShuffledBytes)
}

// budgetLeft reports whether the job may still perform comparisons.
func (c *Context) budgetLeft() bool {
	return c.CompBudget <= 0 || c.metrics.comparisons.Load() < c.CompBudget
}

// ChargeComparisons charges n candidate-pair evaluations to the job's
// metrics under the same budget discipline the join operators enforce: when
// the charge would overrun CompBudget the counter saturates at the budget
// and ErrBudgetExceeded is reported. Code that enumerates candidate pairs
// outside the join operators (the incremental delta detectors) charges
// through this so budgets and metrics see delta work exactly like a full
// pass.
func (c *Context) ChargeComparisons(n int64) error {
	if b := c.CompBudget; b > 0 && c.metrics.comparisons.Load()+n > b {
		chargeBudgetOverflow(&c.metrics, b)
		return ErrBudgetExceeded
	}
	c.metrics.AddComparisons(n)
	return nil
}

// runParallel executes f(0..n-1) on at most Workers concurrent goroutines.
// When the context's Go context is cancelled, remaining work items are
// skipped; every started goroutine still exits through the WaitGroup, so
// cancellation never leaks goroutines.
func (c *Context) runParallel(n int, f func(i int)) {
	if n == 0 {
		return
	}
	width := c.Workers
	if width > n {
		width = n
	}
	if width <= 1 {
		for i := 0; i < n; i++ {
			if c.Err() != nil {
				return
			}
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	wg.Add(width)
	for w := 0; w < width; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || c.Err() != nil {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// Dataset is a partitioned, immutable collection of values bound to a Context.
//
// A dataset is row-backed (parts set), batch-backed (batches set, rows
// materialized lazily through mat), or both (batch-backed with its row form
// already built). wrap and inner implement wrapped scan views: see
// WrapRecords in batch.go.
type Dataset struct {
	ctx   *Context
	parts [][]types.Value

	batches []*data.ColumnBatch
	wrap    *types.Schema
	inner   *Dataset
	mat     *rowCache
}

// Context returns the dataset's execution context.
func (d *Dataset) Context() *Context { return d.ctx }

// WithContext rebinds the dataset to another execution context without
// copying its partitions. Queries rebase shared catalog datasets onto their
// per-query job context so costs are metered per query and cancellation
// reaches the operator loops.
func (d *Dataset) WithContext(ctx *Context) *Dataset {
	if ctx == nil || ctx == d.ctx {
		return d
	}
	return &Dataset{ctx: ctx, parts: d.parts, batches: d.batches, wrap: d.wrap, inner: d.inner, mat: d.mat}
}

// NumPartitions returns the partition count.
func (d *Dataset) NumPartitions() int {
	if d.parts == nil && d.batches != nil {
		return len(d.batches)
	}
	return len(d.parts)
}

// Partition returns partition i (shared storage; do not mutate).
func (d *Dataset) Partition(i int) []types.Value { return d.rows()[i] }

// Partitions returns every partition in order (shared storage; do not mutate
// the outer or the inner slices). This is the copy-free hand-off for result
// consumers: where Collect concatenates every partition into one fresh
// slice, Partitions lets downstream layers — result views, sinks — drain the
// data partition by partition without the engine ever building the O(result)
// merged copy. Batch-backed datasets materialize their rows here; consumers
// that can drain vectors directly should check Batches first.
func (d *Dataset) Partitions() [][]types.Value { return d.rows() }

// FromValues partitions vs into ctx.Workers chunks, preserving order.
func FromValues(ctx *Context, vs []types.Value) *Dataset {
	return FromValuesN(ctx, vs, ctx.Workers)
}

// FromValuesN partitions vs into n contiguous chunks, preserving order.
func FromValuesN(ctx *Context, vs []types.Value, n int) *Dataset {
	if n < 1 {
		n = 1
	}
	parts := make([][]types.Value, n)
	per := (len(vs) + n - 1) / n
	if per == 0 {
		per = 1
	}
	for i := 0; i < n; i++ {
		lo := i * per
		if lo > len(vs) {
			lo = len(vs)
		}
		hi := lo + per
		if hi > len(vs) {
			hi = len(vs)
		}
		parts[i] = vs[lo:hi]
	}
	return &Dataset{ctx: ctx, parts: parts}
}

// FromPartitions wraps pre-partitioned data.
func FromPartitions(ctx *Context, parts [][]types.Value) *Dataset {
	if len(parts) == 0 {
		parts = make([][]types.Value, 1)
	}
	return &Dataset{ctx: ctx, parts: parts}
}

// Collect concatenates all partitions in order.
func (d *Dataset) Collect() []types.Value {
	parts := d.rows()
	var n int
	for _, p := range parts {
		n += len(p)
	}
	out := make([]types.Value, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Count returns the total number of records. Batch-backed datasets answer
// from the vector lengths without materializing rows.
func (d *Dataset) Count() int64 {
	if d.parts == nil && d.batches != nil {
		var n int64
		for _, b := range d.batches {
			if b != nil {
				n += int64(b.N)
			}
		}
		return n
	}
	var n int64
	for _, p := range d.parts {
		n += int64(len(p))
	}
	return n
}

// String summarizes the dataset.
func (d *Dataset) String() string {
	return fmt.Sprintf("Dataset(%d records, %d partitions)", d.Count(), d.NumPartitions())
}
