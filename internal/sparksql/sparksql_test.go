package sparksql

import (
	"errors"
	"testing"

	"cleandb/internal/cleaning"
	"cleandb/internal/datagen"
	"cleandb/internal/engine"
	"cleandb/internal/textsim"
	"cleandb/internal/types"
)

func customers(ctx *engine.Context) *engine.Dataset {
	data := datagen.GenCustomer(datagen.CustomerConfig{Rows: 200, DupRate: 0.2, MaxDups: 5, Seed: 3})
	return engine.FromValues(ctx, data.Rows)
}

func TestFDCheckWorks(t *testing.T) {
	ctx := engine.NewContext(4)
	ds := customers(ctx)
	out := System{}.FDCheck(ds,
		cleaning.FieldExtract("address"),
		cleaning.FieldExtract("nationkey"))
	if out.Count() == 0 {
		t.Fatal("expected FD violations on duplicated customers")
	}
	// The baseline must have used a sort shuffle (full dataset moved).
	found := false
	for _, s := range ctx.Metrics().Stages() {
		if s.Name == "fd:sortshuffle" {
			found = true
		}
	}
	if !found {
		t.Fatal("Spark SQL baseline should sort-shuffle")
	}
}

func TestDCCheckIsNonInteractive(t *testing.T) {
	ctx := engine.NewContext(4)
	ctx.CompBudget = 1000
	ds := customers(ctx)
	_, err := System{}.DCCheck(ds, cleaning.DCConfig{
		Pred: func(a, b types.Value) bool { return true },
		Band: func(v types.Value) float64 { return 0 },
	})
	if !errors.Is(err, ErrNonInteractive) {
		t.Fatalf("want ErrNonInteractive, got %v", err)
	}
}

func TestTermValidateCrossProductBudget(t *testing.T) {
	ctx := engine.NewContext(4)
	ctx.CompBudget = 10
	ds := customers(ctx)
	_, err := System{}.TermValidate(ds,
		func(v types.Value) string { return v.Field("name").Str() },
		[]string{"a", "b", "c"}, textsim.MetricLevenshtein, 0.8)
	if !errors.Is(err, ErrNonInteractive) {
		t.Fatalf("want ErrNonInteractive, got %v", err)
	}
}

func TestTermValidateSmallInputWorks(t *testing.T) {
	ctx := engine.NewContext(2)
	schema := types.NewSchema("name")
	ds := engine.FromValues(ctx, []types.Value{
		types.NewRecord(schema, []types.Value{types.String("stela")}),
	})
	res, err := System{}.TermValidate(ds,
		func(v types.Value) string { return v.Field("name").Str() },
		[]string{"stella"}, textsim.MetricLevenshtein, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Repairs["stela"] != "stella" {
		t.Fatalf("repairs = %v", res.Repairs)
	}
}

func TestUnifiedCleanCombinesOutputs(t *testing.T) {
	ctx := engine.NewContext(4)
	ds := customers(ctx)
	sys := System{}
	addr := cleaning.FieldExtract("address")
	combined := sys.UnifiedClean(ds, []func(*engine.Dataset) *engine.Dataset{
		func(d *engine.Dataset) *engine.Dataset {
			return sys.FDCheck(d, addr, cleaning.FieldExtract("nationkey"))
		},
		func(d *engine.Dataset) *engine.Dataset {
			return sys.Dedup(d, cleaning.DedupConfig{
				BlockAttr: func(v types.Value) string { return v.Field("address").Str() },
				SimAttr: func(v types.Value) string {
					return v.Field("name").Str() + v.Field("phone").Str()
				},
				Metric: textsim.MetricLevenshtein, Theta: 0.5,
			})
		},
	}, func(v types.Value) types.Value {
		if k := v.Field("key"); !k.IsNull() {
			return k
		}
		return v.Field("a").Field("address")
	})
	if combined.Count() == 0 {
		t.Fatal("combined output should carry entities")
	}
}
