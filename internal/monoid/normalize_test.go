package monoid

import (
	"math/rand"
	"testing"

	"cleandb/internal/types"
)

// sources provides two fixed collections for normalization tests.
func testSources(name string) (types.Value, bool) {
	switch name {
	case "src":
		return types.List(types.Int(1), types.Int(2), types.Int(3), types.Int(4)), true
	case "src2":
		return types.List(types.Int(10), types.Int(20)), true
	default:
		return types.Null(), false
	}
}

// evalBoth evaluates the original and normalized forms and compares
// canonical results (bags compared order-insensitively).
func assertNormalizationPreserves(t *testing.T, c *Comprehension) {
	t.Helper()
	ev := NewEvaluator()
	ev.Sources = testSources
	orig, err := ev.EvalComprehension(c, nil)
	if err != nil {
		t.Fatalf("eval original %s: %v", c, err)
	}
	ne := NewNormalizer().Normalize(c)
	normed, err := ev.Eval(ne, nil)
	if err != nil {
		t.Fatalf("eval normalized %s: %v", ne, err)
	}
	if canonFor(c.M, orig) != canonFor(c.M, normed) {
		t.Fatalf("normalization changed semantics\noriginal:   %s = %s\nnormalized: %s = %s",
			c, orig, ne, normed)
	}
}

func canonFor(m Monoid, v types.Value) string {
	if m.Collection() && m.Name() != "list" {
		l := append([]types.Value(nil), v.List()...)
		types.SortValues(l)
		return types.Key(types.ListOf(l))
	}
	return types.Key(v)
}

func TestNormalizeUnnestsNestedComprehension(t *testing.T) {
	// bag{ x*10 | x ← bag{ a+1 | a ← src } } flattens to one comprehension.
	inner := &Comprehension{M: Bag, Head: &BinOp{Op: "+", L: V("a"), R: CInt(1)},
		Quals: []Qual{&Generator{Var: "a", Source: V("src")}}}
	outer := &Comprehension{M: Bag, Head: &BinOp{Op: "*", L: V("x"), R: CInt(10)},
		Quals: []Qual{&Generator{Var: "x", Source: inner}}}
	ne := NewNormalizer().Normalize(outer)
	nc, ok := ne.(*Comprehension)
	if !ok {
		t.Fatalf("normalized to %T", ne)
	}
	for _, q := range nc.Quals {
		if g, ok := q.(*Generator); ok {
			if _, nested := g.Source.(*Comprehension); nested {
				t.Fatalf("nested comprehension not flattened: %s", nc)
			}
		}
	}
	assertNormalizationPreserves(t, outer)
}

func TestNormalizeEmptyGenerator(t *testing.T) {
	c := &Comprehension{M: Sum, Head: V("x"),
		Quals: []Qual{&Generator{Var: "x", Source: &ListCtor{}}}}
	ne := NewNormalizer().Normalize(c)
	cv, ok := ne.(*Const)
	if !ok || cv.Val.Int() != 0 {
		t.Fatalf("empty generator should reduce to zero, got %s", ne)
	}
}

func TestNormalizeSingletonGenerator(t *testing.T) {
	c := &Comprehension{M: Sum, Head: V("x"),
		Quals: []Qual{
			&Generator{Var: "a", Source: V("src")},
			&Generator{Var: "x", Source: &ListCtor{Elems: []Expr{V("a")}}},
		}}
	ne := NewNormalizer().Normalize(c)
	nc, ok := ne.(*Comprehension)
	if !ok {
		t.Fatalf("normalized to %T", ne)
	}
	if len(nc.Quals) != 1 {
		t.Fatalf("singleton generator should be substituted away: %s", nc)
	}
	assertNormalizationPreserves(t, c)
}

func TestNormalizeFalseFilter(t *testing.T) {
	c := &Comprehension{M: Count, Head: CInt(1),
		Quals: []Qual{
			&Generator{Var: "x", Source: V("src")},
			&Pred{Cond: CBool(false)},
		}}
	ne := NewNormalizer().Normalize(c)
	if cv, ok := ne.(*Const); !ok || cv.Val.Int() != 0 {
		t.Fatalf("false filter should zero the comprehension, got %s", ne)
	}
}

func TestNormalizeTrueFilterRemoved(t *testing.T) {
	c := &Comprehension{M: Count, Head: CInt(1),
		Quals: []Qual{
			&Generator{Var: "x", Source: V("src")},
			&Pred{Cond: Eq(CInt(1), CInt(1))},
		}}
	ne := NewNormalizer().Normalize(c)
	nc := ne.(*Comprehension)
	if len(nc.Quals) != 1 {
		t.Fatalf("statically-true filter should be removed: %s", nc)
	}
	assertNormalizationPreserves(t, c)
}

func TestNormalizeIfSplit(t *testing.T) {
	c := &Comprehension{M: Sum, Head: V("y"),
		Quals: []Qual{
			&Generator{Var: "x", Source: V("src")},
			&Generator{Var: "y", Source: &If{
				Cond: Gt(V("x"), CInt(2)),
				Then: &ListCtor{Elems: []Expr{V("x")}},
				Else: &ListCtor{Elems: []Expr{CInt(0)}},
			}},
		}}
	assertNormalizationPreserves(t, c)
}

func TestNormalizeBetaReducesCheapLets(t *testing.T) {
	c := &Comprehension{M: Sum, Head: &BinOp{Op: "+", L: V("y"), R: V("y")},
		Quals: []Qual{
			&Generator{Var: "x", Source: V("src")},
			&Let{Var: "y", E: V("x")}, // cheap: substituted even though used twice
		}}
	ne := NewNormalizer().Normalize(c)
	nc := ne.(*Comprehension)
	for _, q := range nc.Quals {
		if _, isLet := q.(*Let); isLet {
			t.Fatalf("cheap let should be beta-reduced: %s", nc)
		}
	}
	assertNormalizationPreserves(t, c)
}

func TestNormalizeKeepsExpensiveSharedLets(t *testing.T) {
	expensive := &Comprehension{M: Sum, Head: V("z"),
		Quals: []Qual{&Generator{Var: "z", Source: V("src2")}}}
	c := &Comprehension{M: Bag, Head: &BinOp{Op: "+", L: V("y"), R: V("y")},
		Quals: []Qual{
			&Generator{Var: "x", Source: V("src")},
			&Let{Var: "y", E: expensive},
			&Pred{Cond: Gt(V("y"), CInt(0))},
		}}
	ne := NewNormalizer().Normalize(c)
	nc := ne.(*Comprehension)
	foundLet := false
	for _, q := range nc.Quals {
		if _, isLet := q.(*Let); isLet {
			foundLet = true
		}
	}
	if !foundLet {
		t.Fatalf("expensive let used 2x should be kept: %s", nc)
	}
	assertNormalizationPreserves(t, c)
}

func TestNormalizeExistsUnnesting(t *testing.T) {
	// any{ true | x ← src, exists{ _ | y ← src2, y == x*10 } } unnests for
	// idempotent monoids.
	exists := &Exists{C: &Comprehension{M: Any, Head: CBool(true),
		Quals: []Qual{
			&Generator{Var: "y", Source: V("src2")},
			&Pred{Cond: Eq(V("y"), &BinOp{Op: "*", L: V("x"), R: CInt(10)})},
		}}}
	c := &Comprehension{M: Any, Head: CBool(true),
		Quals: []Qual{
			&Generator{Var: "x", Source: V("src")},
			&Pred{Cond: exists},
		}}
	ne := NewNormalizer().Normalize(c)
	nc := ne.(*Comprehension)
	for _, q := range nc.Quals {
		if p, ok := q.(*Pred); ok {
			if _, stillExists := p.Cond.(*Exists); stillExists {
				t.Fatalf("exists should be unnested for idempotent monoid: %s", nc)
			}
		}
	}
	assertNormalizationPreserves(t, c)
}

func TestNormalizeExistsKeptForBag(t *testing.T) {
	// For a non-idempotent monoid the unnesting would duplicate results.
	exists := &Exists{C: &Comprehension{M: Any, Head: CBool(true),
		Quals: []Qual{&Generator{Var: "y", Source: V("src2")}}}}
	c := &Comprehension{M: Bag, Head: V("x"),
		Quals: []Qual{
			&Generator{Var: "x", Source: V("src")},
			&Pred{Cond: exists},
		}}
	assertNormalizationPreserves(t, c)
}

func TestNormalizeFilterPushdown(t *testing.T) {
	// The x-only predicate should move before the y generator.
	c := &Comprehension{M: Bag, Head: &ListCtor{Elems: []Expr{V("x"), V("y")}},
		Quals: []Qual{
			&Generator{Var: "x", Source: V("src")},
			&Generator{Var: "y", Source: V("src2")},
			&Pred{Cond: Gt(V("x"), CInt(2))},
		}}
	ne := NewNormalizer().Normalize(c)
	nc := ne.(*Comprehension)
	// Find positions.
	predIdx, yIdx := -1, -1
	for i, q := range nc.Quals {
		switch qq := q.(type) {
		case *Pred:
			predIdx = i
		case *Generator:
			if qq.Var == "y" {
				yIdx = i
			}
		}
	}
	if predIdx == -1 || yIdx == -1 || predIdx > yIdx {
		t.Fatalf("filter not pushed before y generator: %s", nc)
	}
	assertNormalizationPreserves(t, c)
}

func TestNormalizeConjunctionSplit(t *testing.T) {
	c := &Comprehension{M: Count, Head: CInt(1),
		Quals: []Qual{
			&Generator{Var: "x", Source: V("src")},
			&Pred{Cond: And(Gt(V("x"), CInt(1)), Lt(V("x"), CInt(4)))},
		}}
	ne := NewNormalizer().Normalize(c)
	nc := ne.(*Comprehension)
	preds := 0
	for _, q := range nc.Quals {
		if _, ok := q.(*Pred); ok {
			preds++
		}
	}
	if preds != 2 {
		t.Fatalf("conjunction should split into 2 predicates, got %d: %s", preds, nc)
	}
	assertNormalizationPreserves(t, c)
}

func TestNormalizeConstantFolding(t *testing.T) {
	e := &BinOp{Op: "+", L: CInt(2), R: &BinOp{Op: "*", L: CInt(3), R: CInt(4)}}
	c := &Comprehension{M: Bag, Head: e,
		Quals: []Qual{&Generator{Var: "x", Source: V("src")}}}
	ne := NewNormalizer().Normalize(c)
	nc := ne.(*Comprehension)
	if cv, ok := nc.Head.(*Const); !ok || cv.Val.Int() != 14 {
		t.Fatalf("head should fold to 14: %s", nc.Head)
	}
}

func TestNormalizeFieldOfRecordCtor(t *testing.T) {
	e := F(&RecordCtor{Names: []string{"a"}, Fields: []Expr{V("x")}}, "a")
	c := &Comprehension{M: Bag, Head: e,
		Quals: []Qual{&Generator{Var: "x", Source: V("src")}}}
	ne := NewNormalizer().Normalize(c)
	nc := ne.(*Comprehension)
	if _, ok := nc.Head.(*Var); !ok {
		t.Fatalf("field of record ctor should simplify to the variable: %s", nc.Head)
	}
	assertNormalizationPreserves(t, c)
}

func TestNormalizeGroupByNotUnnested(t *testing.T) {
	// The grouping monoid is structured: its comprehension must NOT be
	// flattened into the outer one.
	grouping := &Comprehension{M: GroupBy{},
		Head: &RecordCtor{Names: []string{"key", "val"}, Fields: []Expr{V("a"), V("a")}},
		Quals: []Qual{
			&Generator{Var: "a", Source: V("src")},
		}}
	c := &Comprehension{M: Bag, Head: F(V("g"), "key"),
		Quals: []Qual{&Generator{Var: "g", Source: grouping}}}
	ne := NewNormalizer().Normalize(c)
	nc := ne.(*Comprehension)
	found := false
	for _, q := range nc.Quals {
		if g, ok := q.(*Generator); ok {
			if inner, ok := g.Source.(*Comprehension); ok && inner.M.Name() == "groupby" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("groupby subquery must be preserved: %s", nc)
	}
}

// TestNormalizationPreservesRandomComprehensions is the normalization
// soundness property test: random comprehensions evaluate identically before
// and after normalization.
func TestNormalizationPreservesRandomComprehensions(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		c := randomComprehension(rng, 2)
		assertNormalizationPreserves(t, c)
	}
}

// randomComprehension builds a small random comprehension over the fixed
// sources with nested comprehensions, lets, filters and conditionals.
func randomComprehension(rng *rand.Rand, depth int) *Comprehension {
	monoids := []Monoid{Sum, Count, Bag, Set, Max, Any}
	m := monoids[rng.Intn(len(monoids))]
	vars := []string{}
	var quals []Qual
	nq := 1 + rng.Intn(3)
	for i := 0; i < nq; i++ {
		switch {
		case len(vars) == 0 || rng.Intn(3) == 0:
			v := string(rune('p' + len(vars)))
			quals = append(quals, &Generator{Var: v, Source: randomSource(rng, depth)})
			vars = append(vars, v)
		case rng.Intn(2) == 0:
			quals = append(quals, &Pred{Cond: randomPred(rng, vars)})
		default:
			v := string(rune('p' + len(vars)))
			quals = append(quals, &Let{Var: v, E: randomScalar(rng, vars)})
			vars = append(vars, v)
		}
	}
	return &Comprehension{M: m, Head: randomScalar(rng, vars), Quals: quals}
}

func randomSource(rng *rand.Rand, depth int) Expr {
	switch rng.Intn(4) {
	case 0:
		return V("src")
	case 1:
		return V("src2")
	case 2:
		n := rng.Intn(3)
		elems := make([]Expr, n)
		for i := range elems {
			elems[i] = CInt(int64(rng.Intn(10)))
		}
		return &ListCtor{Elems: elems}
	default:
		if depth <= 0 {
			return V("src")
		}
		inner := randomComprehension(rng, depth-1)
		// Only collection-valued comprehensions can be generator sources.
		inner.M = []Monoid{Bag, Set, ListM}[rng.Intn(3)]
		return inner
	}
}

func randomScalar(rng *rand.Rand, vars []string) Expr {
	if len(vars) == 0 || rng.Intn(4) == 0 {
		return CInt(int64(rng.Intn(7)))
	}
	v := V(vars[rng.Intn(len(vars))])
	switch rng.Intn(4) {
	case 0:
		return v
	case 1:
		return &BinOp{Op: "+", L: v, R: CInt(int64(rng.Intn(5)))}
	case 2:
		return &BinOp{Op: "*", L: v, R: CInt(int64(rng.Intn(3) + 1))}
	default:
		return &If{Cond: Gt(v, CInt(int64(rng.Intn(5)))), Then: v, Else: CInt(0)}
	}
}

func randomPred(rng *rand.Rand, vars []string) Expr {
	l := randomScalar(rng, vars)
	r := randomScalar(rng, vars)
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	p := Expr(&BinOp{Op: ops[rng.Intn(len(ops))], L: l, R: r})
	if rng.Intn(4) == 0 {
		p = And(p, randomPred(rng, vars))
	}
	return p
}

func TestFreeVarsAndSubstitute(t *testing.T) {
	e := &BinOp{Op: "+", L: V("x"), R: F(V("y"), "f")}
	fv := FreeVars(e)
	if len(fv) != 2 || fv[0] != "x" || fv[1] != "y" {
		t.Fatalf("FreeVars = %v", fv)
	}
	sub := Substitute(e, "x", CInt(9))
	if FreeVars(sub)[0] != "y" {
		t.Fatalf("substitute failed: %s", sub)
	}
}

func TestSubstituteRespectsShadowing(t *testing.T) {
	// In bag{ x | x ← src }, substituting x must not touch the bound x.
	comp := &Comprehension{M: Bag, Head: V("x"),
		Quals: []Qual{&Generator{Var: "x", Source: V("src")}}}
	sub := Substitute(comp, "x", CInt(1)).(*Comprehension)
	if _, isConst := sub.Head.(*Const); isConst {
		t.Fatal("bound variable was captured by substitution")
	}
}

func TestFreeVarsComprehensionScoping(t *testing.T) {
	comp := &Comprehension{M: Bag,
		Head: &BinOp{Op: "+", L: V("x"), R: V("free")},
		Quals: []Qual{
			&Generator{Var: "x", Source: V("src")},
		}}
	fv := FreeVars(comp)
	want := map[string]bool{"free": true, "src": true}
	if len(fv) != 2 || !want[fv[0]] || !want[fv[1]] {
		t.Fatalf("FreeVars = %v, want free+src", fv)
	}
}
