package source

import (
	"bytes"
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cleandb/internal/data"
	"cleandb/internal/types"
)

// flatten concatenates scan partitions in order.
func flatten(parts [][]types.Value) []types.Value {
	var out []types.Value
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// wantSameRows asserts that got matches want element-wise, in order.
func wantSameRows(t *testing.T, got, want []types.Value) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !types.Equal(got[i], want[i]) {
			t.Fatalf("row %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// genCSV builds a messy-but-valid CSV: quoted fields with embedded commas,
// quotes and newlines, empty cells, short rows, int/float/string columns.
func genCSV(rng *rand.Rand, rows int) string {
	var sb strings.Builder
	sb.WriteString("id,score,name,note\n")
	for i := 0; i < rows; i++ {
		switch rng.Intn(6) {
		case 0:
			fmt.Fprintf(&sb, "%d,%g,\"row, %d\",plain\n", i, rng.Float64(), i)
		case 1:
			fmt.Fprintf(&sb, "%d,,\"multi\nline \"\"quoted\"\" cell\",x\n", i)
		case 2:
			fmt.Fprintf(&sb, "%d,%g,,\n", i, float64(i)/3)
		case 3:
			fmt.Fprintf(&sb, "%d,%g,short\n", i, rng.Float64()) // short row
		case 4:
			fmt.Fprintf(&sb, ",%g,empty id,note %d\n", rng.Float64(), i)
		default:
			fmt.Fprintf(&sb, "%d,%g,name %d,ünïcode ✓\n", i, rng.Float64(), i)
		}
	}
	return sb.String()
}

func TestCSVScanMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, rows := range []int{0, 1, 3, 97, 500} {
		csvText := genCSV(rng, rows)
		want, err := data.ReadCSV(strings.NewReader(csvText))
		if err != nil {
			t.Fatalf("ReadCSV: %v", err)
		}
		for _, parts := range []int{1, 2, 3, 7, 16} {
			got, err := CSVBytes([]byte(csvText)).Scan(context.Background(), parts)
			if err != nil {
				t.Fatalf("rows=%d parts=%d: Scan: %v", rows, parts, err)
			}
			if len(got) > parts {
				t.Fatalf("rows=%d: got %d partitions, want <= %d", rows, len(got), parts)
			}
			wantSameRows(t, flatten(got), want)
		}
	}
}

// TestCSVScanPropertyRandom is the property test the chunked loader is held
// to: for random tables round-tripped through the CSV writer, every
// parallelism degree yields exactly the sequential reader's rows, in order.
func TestCSVScanPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	schema := types.NewSchema("a", "b", "c")
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(60)
		rows := make([]types.Value, n)
		for i := range rows {
			fields := []types.Value{
				types.Int(rng.Int63n(1000)),
				types.Float(rng.Float64()),
				types.String(randomCell(rng)),
			}
			if rng.Intn(4) == 0 {
				fields[rng.Intn(3)] = types.Null()
			}
			rows[i] = types.NewRecord(schema, fields)
		}
		var buf bytes.Buffer
		if err := data.WriteCSV(&buf, rows); err != nil {
			t.Fatal(err)
		}
		want, err := data.ReadCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		parts := 1 + rng.Intn(12)
		got, err := CSVBytes(buf.Bytes()).Scan(context.Background(), parts)
		if err != nil {
			t.Fatalf("trial %d (parts=%d): %v", trial, parts, err)
		}
		wantSameRows(t, flatten(got), want)
	}
}

func randomCell(rng *rand.Rand) string {
	pieces := []string{"plain", "with, comma", "with \"quotes\"", "multi\nline", "ünïcode", ""}
	return pieces[rng.Intn(len(pieces))]
}

func TestJSONScanMatchesSequential(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		switch i % 4 {
		case 0:
			fmt.Fprintf(&sb, `{"id":%d,"name":"n%d","tags":["a","b"]}`+"\n", i, i)
		case 1:
			fmt.Fprintf(&sb, `{"id":%d,"nested":{"x":%d,"y":null}}`+"\n", i, i*2)
		case 2:
			sb.WriteString("\n") // blank line: skipped
		default:
			fmt.Fprintf(&sb, `{"id":%d,"score":%g}`+"\n", i, float64(i)/7)
		}
	}
	want, err := data.ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{1, 2, 5, 13} {
		got, err := JSONBytes([]byte(sb.String())).Scan(context.Background(), parts)
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		wantSameRows(t, flatten(got), want)
	}
}

func TestJSONScanErrorKeepsAbsoluteLineNumber(t *testing.T) {
	lines := make([]string, 40)
	for i := range lines {
		lines[i] = fmt.Sprintf(`{"id":%d}`, i)
	}
	lines[33] = `{"id":` // malformed
	input := strings.Join(lines, "\n")
	_, err := JSONBytes([]byte(input)).Scan(context.Background(), 8)
	if err == nil || !strings.Contains(err.Error(), "line 34") {
		t.Fatalf("err = %v, want mention of line 34", err)
	}
}

func TestXMLScanMatchesSequential(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<dblp>\n")
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&sb, `<article key="a%d"><title>t%d</title><year>%d</year><author>x</author><author>y</author></article>`+"\n", i, i, 2000+i%20)
	}
	sb.WriteString("</dblp>\n")
	want, err := data.ReadXML(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := XMLBytes([]byte(sb.String())).Scan(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) > 4 {
		t.Fatalf("partitions = %d, want <= 4", len(got))
	}
	wantSameRows(t, flatten(got), want)
}

func colbinSample(t *testing.T, n int) []byte {
	t.Helper()
	schema := types.NewSchema("id", "score", "name", "flag", "tags")
	rows := make([]types.Value, n)
	for i := range rows {
		fields := []types.Value{
			types.Int(int64(i)),
			types.Float(float64(i) / 3),
			types.String(fmt.Sprintf("name-%d", i%17)), // dictionary-friendly
			types.Bool(i%2 == 0),
			types.List(types.String("a"), types.String(fmt.Sprint(i%5))),
		}
		if i%11 == 0 {
			fields[i%5] = types.Null()
		}
		rows[i] = types.NewRecord(schema, fields)
	}
	var buf bytes.Buffer
	if err := data.WriteColbin(&buf, rows); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestColbinScanMatchesSequential(t *testing.T) {
	buf := colbinSample(t, 300)
	want, err := data.ReadColbin(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{1, 2, 7, 32} {
		got, err := ColbinBytes(buf).Scan(context.Background(), parts)
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		if len(got) > parts {
			t.Fatalf("parts=%d: got %d partitions", parts, len(got))
		}
		wantSameRows(t, flatten(got), want)
	}
}

func TestColbinSchemaAndStatsWithoutScan(t *testing.T) {
	buf := colbinSample(t, 64)
	src := ColbinBytes(buf)
	names, err := src.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 5 || names[0] != "id" {
		t.Fatalf("schema = %v", names)
	}
	st, err := src.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 64 || st.Bytes != int64(len(buf)) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCSVSchemaAndStats(t *testing.T) {
	src := CSVBytes([]byte("a,\"b,c\",d\n1,2,3\n"))
	names, err := src.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[1] != "b,c" {
		t.Fatalf("schema = %v", names)
	}
	st, _ := src.Stats()
	if st.Rows != -1 || st.Bytes != 16 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMemSource(t *testing.T) {
	schema := types.NewSchema("x")
	rows := []types.Value{
		types.NewRecord(schema, []types.Value{types.Int(1)}),
		types.NewRecord(schema, []types.Value{types.Int(2)}),
		types.NewRecord(schema, []types.Value{types.Int(3)}),
	}
	src := FromRows(rows)
	st, _ := src.Stats()
	if st.Rows != 3 {
		t.Fatalf("stats = %+v", st)
	}
	names, _ := src.Schema()
	if len(names) != 1 || names[0] != "x" {
		t.Fatalf("schema = %v", names)
	}
	got, err := src.Scan(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("partitions = %d", len(got))
	}
	wantSameRows(t, flatten(got), rows)
}

func TestFromPath(t *testing.T) {
	for ext, format := range map[string]string{
		".csv": "csv", ".json": "json", ".jsonl": "json", ".ndjson": "json",
		".xml": "xml", ".colbin": "colbin",
	} {
		src, err := FromPath("file" + ext)
		if err != nil {
			t.Fatalf("%s: %v", ext, err)
		}
		if src.Format() != format {
			t.Fatalf("%s: format = %q, want %q", ext, src.Format(), format)
		}
	}
	if _, err := FromPath("file.parquet"); err == nil {
		t.Fatal("unknown extension should error")
	}
}

func TestFileBackedScan(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	csvText := genCSV(rand.New(rand.NewSource(3)), 120)
	if err := os.WriteFile(path, []byte(csvText), 0o644); err != nil {
		t.Fatal(err)
	}
	want, err := data.ReadCSV(strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	src := NewCSVFile(path)
	st, _ := src.Stats()
	if st.Bytes != int64(len(csvText)) {
		t.Fatalf("stats = %+v, want %d bytes", st, len(csvText))
	}
	names, err := src.Schema()
	if err != nil || len(names) != 4 {
		t.Fatalf("schema = %v, %v", names, err)
	}
	got, err := src.Scan(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	wantSameRows(t, flatten(got), want)
}

func TestFileBackedScanMissingFile(t *testing.T) {
	if _, err := NewCSVFile("/nonexistent/nope.csv").Scan(context.Background(), 2); err == nil {
		t.Fatal("missing file should error at scan time")
	}
}

func TestScanCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	csvText := genCSV(rand.New(rand.NewSource(5)), 500)
	for _, src := range []Source{
		CSVBytes([]byte(csvText)),
		JSONBytes([]byte(`{"a":1}` + "\n")),
		XMLBytes([]byte(`<r><e><a>1</a></e></r>`)),
		ColbinBytes(colbinSample(t, 50)),
		FromRows([]types.Value{types.Int(1)}),
	} {
		if _, err := src.Scan(ctx, 4); err != context.Canceled {
			t.Errorf("%s: cancelled Scan err = %v, want context.Canceled", src.Format(), err)
		}
	}
}

func TestPartition(t *testing.T) {
	vs := make([]types.Value, 10)
	for i := range vs {
		vs[i] = types.Int(int64(i))
	}
	for _, tc := range []struct{ n, wantParts int }{{1, 1}, {3, 3}, {4, 4}, {10, 10}, {50, 10}, {0, 1}} {
		parts := partition(vs, tc.n)
		if len(parts) != tc.wantParts {
			t.Fatalf("partition(10, %d) = %d parts, want %d", tc.n, len(parts), tc.wantParts)
		}
		wantSameRows(t, flatten(parts), vs)
	}
	if got := partition(nil, 4); got != nil {
		t.Fatalf("partition(nil) = %v", got)
	}
}

// TestCSVScanErrorKeepsAbsoluteLineNumber mirrors the JSON test: a parse
// error inside a later chunk must report the same file-absolute line number
// the sequential reader reports.
func TestCSVScanErrorKeepsAbsoluteLineNumber(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("a,b\n")
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&sb, "%d,ok\n", i)
	}
	sb.WriteString("351,bad\"cell\n") // bare quote: csv parse error
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&sb, "%d,ok\n", i)
	}
	in := []byte(sb.String())
	_, seqErr := data.ReadCSV(bytes.NewReader(in))
	var seqPE *csv.ParseError
	if !errors.As(seqErr, &seqPE) {
		t.Fatalf("sequential err = %v, want a csv.ParseError", seqErr)
	}
	for _, parts := range []int{2, 4, 8} {
		_, err := CSVBytes(in).Scan(context.Background(), parts)
		var pe *csv.ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("parts=%d: err = %v, want a csv.ParseError", parts, err)
		}
		if pe.Line != seqPE.Line || pe.StartLine != seqPE.StartLine {
			t.Fatalf("parts=%d: error at line %d (start %d), sequential says %d (start %d)",
				parts, pe.Line, pe.StartLine, seqPE.Line, seqPE.StartLine)
		}
	}
}
