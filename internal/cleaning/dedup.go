package cleaning

import (
	"cleandb/internal/cluster"
	"cleandb/internal/engine"
	"cleandb/internal/physical"
	"cleandb/internal/textsim"
	"cleandb/internal/types"
)

// DupPairSchema describes duplicate-pair records.
var DupPairSchema = types.NewSchema("a", "b")

// DedupConfig parameterizes duplicate elimination.
type DedupConfig struct {
	// Blocker assigns records to comparison groups via BlockAttr. A nil
	// Blocker groups records by the exact BlockAttr value.
	Blocker cluster.Blocker
	// BlockAttr extracts the blocking string from a record.
	BlockAttr func(types.Value) string
	// SimAttr extracts the string compared for similarity (defaults to
	// BlockAttr).
	SimAttr func(types.Value) string
	// Metric and Theta configure the similarity predicate sim > Theta.
	// A zero Theta means DefaultTheta unless ThetaSet is true.
	Metric textsim.Metric
	Theta  float64
	// ThetaSet marks Theta as explicitly configured, making an intentional
	// zero threshold (report every non-identical intra-block pair)
	// expressible. Without it, Theta == 0 selects DefaultTheta.
	ThetaSet bool
	// Strategy selects the grouping shuffle.
	Strategy physical.GroupStrategy
}

// DefaultTheta is the similarity threshold used when DedupConfig leaves
// Theta unset (the paper's θ = 0.8).
const DefaultTheta = 0.8

// Dedup finds similar record pairs: records are blocked, then all intra-block
// pairs are compared with the similarity metric (paper §4.4 DEDUP
// semantics). Pairs are emitted once even when blocks overlap, ordered by
// the records' canonical keys. Comparison counts are charged to the
// context's metrics, so blocked and unblocked configurations are directly
// comparable.
func Dedup(ds *engine.Dataset, cfg DedupConfig) *engine.Dataset {
	if cfg.SimAttr == nil {
		cfg.SimAttr = cfg.BlockAttr
	}
	if cfg.Theta == 0 && !cfg.ThetaSet {
		cfg.Theta = DefaultTheta
	}
	ctx := ds.Context()

	// Blocking: flatMap each record to (blockkey, record) pairs.
	pairSchema := types.NewSchema("bkey", "rec")
	blocked := ds.FlatMap("dedup:block", func(v types.Value) []types.Value {
		attr := cfg.BlockAttr(v)
		var keys []string
		if cfg.Blocker == nil {
			keys = []string{attr}
		} else {
			keys = cfg.Blocker.Keys(attr)
		}
		out := make([]types.Value, len(keys))
		for i, k := range keys {
			out[i] = types.NewRecord(pairSchema, []types.Value{types.String(k), v})
		}
		return out
	})

	agg := engine.GroupAgg{
		Project: func(v types.Value) types.Value { return v.Field("rec") },
	}
	key := func(v types.Value) types.Value { return v.Field("bkey") }
	var groups *engine.Dataset
	switch cfg.Strategy {
	case physical.GroupSort:
		groups = blocked.SortShuffleGroup("dedup", key, agg)
	case physical.GroupHash:
		groups = blocked.HashShuffleGroup("dedup", key, agg)
	default:
		groups = blocked.AggregateByKey("dedup", key, agg)
	}

	// Intra-group pairwise comparisons; charge comparisons to the metrics.
	// The stage's cost model is quadratic in group size, so a worker owning
	// a popular block is the straggler — the skew effect of paper §8.3.
	//
	// The O(n²) pair loop runs on precomputed per-member state: canonical
	// keys and similarity strings are extracted once per member (the naive
	// loop rebuilt them per pair), and the strings are interned so that
	// overlapping blocks — token filtering assigns a record to one block per
	// q-gram — resolve repeated pairs from the similarity cache as integer
	// lookups instead of re-running the edit-distance program. Comparisons
	// are charged exactly as before: the cache changes where the answer
	// comes from, never how much work the cost model sees.
	cache := textsim.NewPairCache(cfg.Metric, cfg.Theta)
	pairs := groups.FlatMapW("dedup:compare", func(g types.Value) []types.Value {
		_, members := engine.GroupRecord(g)
		n := len(members)
		keys := make([]string, n)
		sims := make([]string, n)
		codes := make([]uint32, n)
		for i, mv := range members {
			keys[i] = types.Key(mv)
			sims[i] = cfg.SimAttr(mv)
			codes[i] = cache.Intern(sims[i])
		}
		var out []types.Value
		var comparisons int64
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break // cancelled mid-block: the driver discards partial output
			}
			for j := i + 1; j < n; j++ {
				comparisons++
				if keys[i] == keys[j] {
					continue // identical records: not a pair
				}
				if cache.Above(codes[i], codes[j], sims[i], sims[j]) {
					a, b := members[i], members[j]
					if keys[j] < keys[i] {
						a, b = b, a
					}
					out = append(out, types.NewRecord(DupPairSchema, []types.Value{a, b}))
				}
			}
		}
		ctx.Metrics().AddComparisons(comparisons)
		return out
	}, func(g types.Value) int64 {
		_, members := engine.GroupRecord(g)
		n := int64(len(members))
		return n * (n - 1) / 2
	})
	hits, misses := cache.Stats()
	ctx.Metrics().AddSimCacheStats(hits, misses)

	// De-duplicate pairs found in several blocks.
	return pairs.AggregateByKey("dedup:distinct",
		func(v types.Value) types.Value { return v },
		engine.GroupAgg{Finish: func(key types.Value, group []types.Value) types.Value {
			return group[0]
		}})
}

// ExactDuplicates reports groups of fully identical records (count > 1) —
// the "lighter duplicate detection form" of paper §3.1. The returned records
// are {key, group} with the shared attribute key.
func ExactDuplicates(ds *engine.Dataset, attrs Extract, strategy physical.GroupStrategy) *engine.Dataset {
	agg := engine.GroupAgg{Finish: func(key types.Value, group []types.Value) types.Value {
		if len(group) <= 1 {
			return types.Null()
		}
		return types.NewRecord(types.NewSchema("key", "group"), []types.Value{key, types.ListOf(group)})
	}}
	switch strategy {
	case physical.GroupSort:
		return ds.SortShuffleGroup("exactdup", engine.KeyFunc(attrs), agg)
	case physical.GroupHash:
		return ds.HashShuffleGroup("exactdup", engine.KeyFunc(attrs), agg)
	default:
		return ds.AggregateByKey("exactdup", engine.KeyFunc(attrs), agg)
	}
}
