package monoid

import (
	"cleandb/internal/types"
)

// Iteration implements the paper's "iteration monoid" (§4.3): multi-pass
// algorithms — the original k-means, canopy clustering, hierarchical
// clustering — are n equivalent monoid comprehensions, each storing its
// result into a state that flows to the next iteration. Iteration is the
// foldLeft-style syntactic sugar the paper proposes in place of writing the
// n comprehensions out.
type Iteration struct {
	// Init is the initial state (e.g. the initial cluster centers).
	Init types.Value
	// Step computes iteration i's comprehension result from the previous
	// state. It corresponds to one of the n equivalent comprehensions.
	Step func(i int, state types.Value) (types.Value, error)
	// Until, when non-nil, stops early once the state reaches a fixpoint or
	// other convergence condition.
	Until func(prev, next types.Value) bool
}

// Run folds the state through n iterations (or fewer if Until fires).
func (it Iteration) Run(n int) (types.Value, error) {
	state := it.Init
	for i := 0; i < n; i++ {
		next, err := it.Step(i, state)
		if err != nil {
			return types.Null(), err
		}
		if it.Until != nil && it.Until(state, next) {
			return next, nil
		}
		state = next
	}
	return state, nil
}

// IterateComprehension runs a comprehension n times, binding the evolving
// state to stateVar — the de-sugared form of the iteration monoid. The
// comprehension sees the previous state through the environment, exactly as
// the paper's "each iteration stores the result ... which is then
// transferred to the next iteration".
func IterateComprehension(ev *Evaluator, c *Comprehension, stateVar string, init types.Value, n int) (types.Value, error) {
	it := Iteration{
		Init: init,
		Step: func(_ int, state types.Value) (types.Value, error) {
			return ev.EvalComprehension(c, (*Env)(nil).Bind(stateVar, state))
		},
		Until: func(prev, next types.Value) bool {
			return types.Equal(prev, next) // fixpoint
		},
	}
	return it.Run(n)
}
