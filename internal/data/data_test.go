package data

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"cleandb/internal/types"
)

func TestCSVRoundTrip(t *testing.T) {
	schema := types.NewSchema("id", "name", "score")
	rows := []types.Value{
		types.NewRecord(schema, []types.Value{types.Int(1), types.String("ann"), types.Float(2.5)}),
		types.NewRecord(schema, []types.Value{types.Int(2), types.String("bob"), types.Float(-1)}),
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("rows = %d", len(back))
	}
	if back[0].Field("id").Int() != 1 || back[0].Field("name").Str() != "ann" {
		t.Fatalf("row 0 = %s", back[0])
	}
	if back[1].Field("score").Float() != -1 {
		t.Fatalf("float column: %s", back[1])
	}
}

func TestCSVTypeInference(t *testing.T) {
	in := "a,b,c,d\n1,1.5,xyz,\n2,2,abc,\n"
	rows, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Field("a").Kind() != types.KindInt {
		t.Error("column a should infer int")
	}
	if rows[0].Field("b").Kind() != types.KindFloat {
		t.Error("column b should infer float")
	}
	if rows[0].Field("c").Kind() != types.KindString {
		t.Error("column c should infer string")
	}
	if !rows[0].Field("d").IsNull() {
		t.Error("empty cells become null")
	}
}

func TestCSVEmpty(t *testing.T) {
	rows, err := ReadCSV(strings.NewReader(""))
	if err != nil || rows != nil {
		t.Fatalf("empty csv: %v, %v", rows, err)
	}
	if err := WriteCSV(&bytes.Buffer{}, nil); err != nil {
		t.Fatal("writing no rows should succeed")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	schema := types.NewSchema("authors", "title", "year")
	rows := []types.Value{
		types.NewRecord(schema, []types.Value{
			types.List(types.String("x"), types.String("y")),
			types.String("paper"), types.Int(2001),
		}),
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("rows = %d", len(back))
	}
	if types.Key(back[0]) != types.Key(rows[0]) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", back[0], rows[0])
	}
}

func TestJSONNested(t *testing.T) {
	in := `{"a": {"b": [1, 2.5, "s", null, true]}}`
	rows, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	inner := rows[0].Field("a").Field("b").List()
	if len(inner) != 5 {
		t.Fatalf("nested list: %v", inner)
	}
	if inner[0].Kind() != types.KindInt || inner[1].Kind() != types.KindFloat {
		t.Fatal("number kinds")
	}
	if !inner[3].IsNull() || !inner[4].Bool() {
		t.Fatal("null/bool")
	}
}

func TestJSONBadInput(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{broken")); err == nil {
		t.Fatal("bad json should error")
	}
}

func TestJSONSkipsBlankLines(t *testing.T) {
	rows, err := ReadJSON(strings.NewReader("\n{\"a\":1}\n\n{\"a\":2}\n"))
	if err != nil || len(rows) != 2 {
		t.Fatalf("rows=%v err=%v", rows, err)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	schema := types.NewSchema("authors", "title", "year")
	rows := []types.Value{
		types.NewRecord(schema, []types.Value{
			types.List(types.String("ann"), types.String("bob")),
			types.String("a <nice> paper"), types.Int(1999),
		}),
		types.NewRecord(schema, []types.Value{
			types.List(types.String("solo")),
			types.String("another"), types.Int(2000),
		}),
	}
	var buf bytes.Buffer
	if err := WriteXML(&buf, rows, "dblp", "article"); err != nil {
		t.Fatal(err)
	}
	back, err := ReadXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("rows = %d", len(back))
	}
	if back[0].Field("title").Str() != "a <nice> paper" {
		t.Fatalf("escaping broken: %s", back[0].Field("title"))
	}
	if len(back[0].Field("authors").List()) != 2 {
		t.Fatalf("repeated elements should form a list: %s", back[0])
	}
	// Single author stays scalar (XML cannot distinguish); Flatten treats
	// both uniformly.
	if back[1].Field("authors").Kind() == types.KindList {
		t.Log("single author parsed as scalar, as expected")
	}
}

func TestXMLAttributes(t *testing.T) {
	in := `<root><rec key="k1"><v>3</v></rec></root>`
	rows, err := ReadXML(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Field("key").Str() != "k1" || rows[0].Field("v").Int() != 3 {
		t.Fatalf("attr parse: %s", rows[0])
	}
}

func TestFlatten(t *testing.T) {
	schema := types.NewSchema("authors", "title")
	rows := []types.Value{
		types.NewRecord(schema, []types.Value{
			types.List(types.String("a"), types.String("b"), types.String("c")),
			types.String("t1"),
		}),
		types.NewRecord(schema, []types.Value{
			types.List(types.String("x")),
			types.String("t2"),
		}),
	}
	flat := Flatten(rows)
	if len(flat) != 4 {
		t.Fatalf("flattened rows = %d, want 4", len(flat))
	}
	if flat[0].Field("authors").Kind() != types.KindString {
		t.Fatalf("flattened author should be scalar: %s", flat[0])
	}
}

func TestFlattenNoList(t *testing.T) {
	schema := types.NewSchema("a")
	rows := []types.Value{types.NewRecord(schema, []types.Value{types.Int(1)})}
	flat := Flatten(rows)
	if len(flat) != 1 || flat[0].Field("a").Int() != 1 {
		t.Fatalf("no-list flatten should be identity: %v", flat)
	}
}

func TestColbinRoundTrip(t *testing.T) {
	schema := types.NewSchema("authors", "n", "score", "title", "valid")
	rows := []types.Value{
		types.NewRecord(schema, []types.Value{
			types.List(types.String("a"), types.String("b")),
			types.Int(-7), types.Float(1.25), types.String("t1"), types.Bool(true),
		}),
		types.NewRecord(schema, []types.Value{
			types.List(),
			types.Int(12), types.Float(-0.5), types.String("t2"), types.Bool(false),
		}),
		types.NewRecord(schema, []types.Value{
			types.Null(), types.Null(), types.Null(), types.Null(), types.Null(),
		}),
	}
	var buf bytes.Buffer
	if err := WriteColbin(&buf, rows); err != nil {
		t.Fatal(err)
	}
	back, err := ReadColbin(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("rows = %d", len(back))
	}
	for i := range rows {
		if types.Key(back[i]) != types.Key(rows[i]) {
			t.Fatalf("row %d mismatch:\n%s\nvs\n%s", i, back[i], rows[i])
		}
	}
}

func TestColbinDictionaryCompression(t *testing.T) {
	// Highly repetitive strings: colbin should be much smaller than CSV.
	schema := types.NewSchema("j")
	rows := make([]types.Value, 2000)
	for i := range rows {
		rows[i] = types.NewRecord(schema, []types.Value{types.String("the same long journal name")})
	}
	var csvBuf, binBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, rows); err != nil {
		t.Fatal(err)
	}
	if err := WriteColbin(&binBuf, rows); err != nil {
		t.Fatal(err)
	}
	if binBuf.Len()*5 > csvBuf.Len() {
		t.Fatalf("colbin %dB should be ≤ 1/5 of CSV %dB on repetitive data", binBuf.Len(), csvBuf.Len())
	}
}

func TestColbinEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteColbin(&buf, nil); err != nil {
		t.Fatal(err)
	}
	rows, err := ReadColbin(&buf)
	if err != nil || rows != nil {
		t.Fatalf("empty colbin: %v, %v", rows, err)
	}
}

func TestColbinBadMagic(t *testing.T) {
	if _, err := ReadColbin(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic should error")
	}
	if _, err := ReadColbin(strings.NewReader("")); err == nil {
		t.Fatal("empty stream should error")
	}
}

func TestColbinRandomRoundTrip(t *testing.T) {
	// Property: random flat-with-one-list-column records survive the trip.
	rng := rand.New(rand.NewSource(111))
	schema := types.NewSchema("list", "num", "str")
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(50)
		rows := make([]types.Value, n)
		for i := range rows {
			var lv types.Value
			if rng.Intn(5) == 0 {
				lv = types.Null()
			} else {
				elems := make([]types.Value, rng.Intn(4))
				for j := range elems {
					elems[j] = types.String(randStr(rng))
				}
				lv = types.ListOf(elems)
			}
			var nv types.Value
			if rng.Intn(5) == 0 {
				nv = types.Null()
			} else {
				nv = types.Int(int64(rng.Intn(2000) - 1000))
			}
			rows[i] = types.NewRecord(schema, []types.Value{lv, nv, types.String(randStr(rng))})
		}
		var buf bytes.Buffer
		if err := WriteColbin(&buf, rows); err != nil {
			t.Fatal(err)
		}
		back, err := ReadColbin(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rows {
			if types.Key(back[i]) != types.Key(rows[i]) {
				t.Fatalf("trial %d row %d: %s vs %s", trial, i, back[i], rows[i])
			}
		}
	}
}

func randStr(rng *rand.Rand) string {
	n := rng.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

func TestColTypeString(t *testing.T) {
	if ColString.String() != "string" || ColStringList.String() != "list<string>" {
		t.Fatal("ColType names")
	}
}

// TestCSVEmptyCellsAreNulls locks in the null contract of ParseCell: an
// empty cell is a null in every inferred column type — never a typed zero
// value — matching the null handling of the JSON and XML readers. Short
// rows behave as if their missing cells were empty.
func TestCSVEmptyCellsAreNulls(t *testing.T) {
	cases := []struct {
		name string
		in   string
		col  string
		row  int
		want types.Kind
	}{
		{"empty int cell", "i,s\n1,a\n,b\n", "i", 1, types.KindNull},
		{"empty float cell", "f,s\n1.5,a\n,b\n", "f", 1, types.KindNull},
		{"empty string cell", "s,t\nx,a\n,b\n", "s", 1, types.KindNull},
		{"short row missing int", "s,i\na,1\nb\n", "i", 1, types.KindNull},
		{"short row missing string", "i,s\n1,a\n2\n", "s", 1, types.KindNull},
		{"quoted empty cell", "i,s\n1,a\n\"\",b\n", "i", 1, types.KindNull},
		{"all-empty column stays null", "i,e\n1,\n2,\n", "e", 0, types.KindNull},
		{"populated int cell", "i,s\n1,a\n,b\n", "i", 0, types.KindInt},
		{"populated float cell", "f,s\n1.5,a\n,b\n", "f", 0, types.KindFloat},
		{"whitespace cell is a string", "i,s\n1,a\n ,b\n", "i", 1, types.KindString},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rows, err := ReadCSV(strings.NewReader(tc.in))
			if err != nil {
				t.Fatal(err)
			}
			got := rows[tc.row].Field(tc.col).Kind()
			if got != tc.want {
				t.Fatalf("%s[%d] kind = %v, want %v", tc.col, tc.row, got, tc.want)
			}
		})
	}
}

// TestParseCellTable exercises ParseCell directly: empties are nulls for
// every column type, and cells that fail to parse fall back to strings.
func TestParseCellTable(t *testing.T) {
	cases := []struct {
		cell string
		t    ColType
		want types.Value
	}{
		{"", ColInt, types.Null()},
		{"", ColFloat, types.Null()},
		{"", ColString, types.Null()},
		{"", ColBool, types.Null()},
		{"42", ColInt, types.Int(42)},
		{"-7", ColInt, types.Int(-7)},
		{"1.5", ColFloat, types.Float(1.5)},
		{"2", ColFloat, types.Float(2)},
		{"x", ColString, types.String("x")},
		{"abc", ColInt, types.String("abc")},   // mismatch falls back to string
		{"abc", ColFloat, types.String("abc")}, // mismatch falls back to string
		{"0", ColString, types.String("0")},
	}
	for _, tc := range cases {
		got := ParseCell(tc.cell, tc.t)
		if !types.Equal(got, tc.want) || got.Kind() != tc.want.Kind() {
			t.Errorf("ParseCell(%q, %v) = %v (%v), want %v (%v)",
				tc.cell, tc.t, got, got.Kind(), tc.want, tc.want.Kind())
		}
	}
}

// TestInferColumnTypesChunked checks that chunked inference equals
// single-slice inference regardless of how rows are split — the property
// the parallel CSV loader relies on for identical typing.
func TestInferColumnTypesChunked(t *testing.T) {
	rows := [][]string{
		{"1", "1.5", "x", ""},
		{"2", "2", "y", ""},
		{"3.5", "z", "", ""},
		{"4", "5", "7", ""},
	}
	want := InferColumnTypes([][][]string{rows}, 4)
	if want[0] != ColFloat || want[1] != ColString || want[2] != ColString || want[3] != ColString {
		t.Fatalf("baseline inference = %v", want)
	}
	for split := 1; split < len(rows); split++ {
		got := InferColumnTypes([][][]string{rows[:split], rows[split:]}, 4)
		for c := range want {
			if got[c] != want[c] {
				t.Fatalf("split %d col %d: %v, want %v", split, c, got[c], want[c])
			}
		}
	}
}

// TestColbinCorruptInputs feeds truncated and size-lying buffers to the
// indexed reader: every one must fail with an error — no panics, no
// input-independent allocations.
func TestColbinCorruptInputs(t *testing.T) {
	var good bytes.Buffer
	schema := types.NewSchema("a", "b")
	if err := WriteColbin(&good, []types.Value{
		types.NewRecord(schema, []types.Value{types.Int(1), types.String("x")}),
	}); err != nil {
		t.Fatal(err)
	}
	buf := good.Bytes()
	for n := 4; n < len(buf); n++ {
		if _, err := ReadColbin(bytes.NewReader(buf[:n])); err == nil {
			t.Fatalf("truncation at %d bytes should error", n)
		}
	}
	for _, tc := range []struct {
		name string
		in   []byte
	}{
		{"huge ncols", []byte("CBN1\xff\xff\xff\xff\x0f")},
		{"huge nrows", append([]byte("CBN1\x01\x01a\x00"), 0xff, 0xff, 0xff, 0xff, 0x0f)},
		{"huge dict", []byte("CBN1\x01\x01a\x00\x01\x00\xff\xff\xff\xff\x0f")},
		{"unknown col type", []byte("CBN1\x01\x01a\x09\x01\x00\x00")},
	} {
		if _, err := ReadColbin(bytes.NewReader(tc.in)); err == nil {
			t.Errorf("%s should error", tc.name)
		}
	}
}

// TestColbinIndexParallelDecode checks the index/decode pair the
// column-parallel loader uses: extents decode independently to the same
// values the sequential reader produces.
func TestColbinIndexParallelDecode(t *testing.T) {
	schema := types.NewSchema("i", "s", "l")
	rows := make([]types.Value, 50)
	for i := range rows {
		rows[i] = types.NewRecord(schema, []types.Value{
			types.Int(int64(i)),
			types.String("v" + string(rune('a'+i%3))),
			types.List(types.String("t"), types.String("u")),
		})
	}
	var buf bytes.Buffer
	if err := WriteColbin(&buf, rows); err != nil {
		t.Fatal(err)
	}
	info, err := IndexColbin(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != 50 || len(info.Names) != 3 {
		t.Fatalf("info = %+v", info)
	}
	for c := range info.Names {
		vals, err := info.DecodeColumn(c)
		if err != nil {
			t.Fatalf("col %d: %v", c, err)
		}
		for i, v := range vals {
			want := rows[i].Record().Fields[c]
			if !types.Equal(v, want) {
				t.Fatalf("col %d row %d = %v, want %v", c, i, v, want)
			}
		}
	}
}

// TestJSONSchemaKeyCollision guards the schema-cache key against name sets
// that differ only in where a space falls: {"a b","c"} and {"a","b c"} must
// get distinct schemas (a space-joined cache key conflated them).
func TestJSONSchemaKeyCollision(t *testing.T) {
	in := `{"a b":1,"c":2}` + "\n" + `{"a":3,"b c":4}` + "\n"
	rows, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if n := rows[0].Field("a b").Int(); n != 1 {
		t.Fatalf(`rows[0]["a b"] = %d, want 1`, n)
	}
	if n := rows[1].Field("b c").Int(); n != 4 {
		t.Fatalf(`rows[1]["b c"] = %d, want 4 (schema collision?)`, n)
	}
	if n := rows[1].Field("a").Int(); n != 3 {
		t.Fatalf(`rows[1]["a"] = %d, want 3`, n)
	}
}
