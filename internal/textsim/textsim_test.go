package textsim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLevenshteinKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "", 3},
		{"", "xyz", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"gumbo", "gambol", 2},
		{"book", "back", 2},
		{"a", "b", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func randWord(rng *rand.Rand, maxLen int) string {
	n := rng.Intn(maxLen + 1)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(4))
	}
	return string(b)
}

func TestLevenshteinMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		a, b, c := randWord(rng, 10), randWord(rng, 10), randWord(rng, 10)
		dab := Levenshtein(a, b)
		dba := Levenshtein(b, a)
		if dab != dba {
			t.Fatalf("symmetry violated: d(%q,%q)=%d, d(%q,%q)=%d", a, b, dab, b, a, dba)
		}
		if (dab == 0) != (a == b) {
			t.Fatalf("identity violated for %q, %q", a, b)
		}
		dac := Levenshtein(a, c)
		dcb := Levenshtein(c, b)
		if dab > dac+dcb {
			t.Fatalf("triangle inequality violated: d(%q,%q)=%d > %d+%d via %q", a, b, dab, dac, dcb, c)
		}
	}
}

func TestLevenshteinWithinAgreesWithFull(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		a, b := randWord(rng, 12), randWord(rng, 12)
		k := rng.Intn(6)
		want := Levenshtein(a, b) <= k
		if got := LevenshteinWithin(a, b, k); got != want {
			t.Fatalf("LevenshteinWithin(%q, %q, %d) = %v, full distance %d", a, b, k, got, Levenshtein(a, b))
		}
	}
}

func TestLevenshteinWithinNegative(t *testing.T) {
	if LevenshteinWithin("a", "a", -1) {
		t.Error("negative threshold should be false")
	}
	if !LevenshteinWithin("abc", "abc", 0) {
		t.Error("identical strings within 0")
	}
	if LevenshteinWithin("abc", "abd", 0) {
		t.Error("different strings not within 0")
	}
}

func TestSimilarityRange(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 500; i++ {
		a, b := randWord(rng, 10), randWord(rng, 10)
		s := Similarity(a, b)
		if s < 0 || s > 1 {
			t.Fatalf("Similarity(%q, %q) = %f out of range", a, b, s)
		}
		if a == b && s != 1 {
			t.Fatalf("Similarity of equal strings should be 1")
		}
	}
	if Similarity("", "") != 1 {
		t.Error("empty strings are fully similar")
	}
}

func TestSimilarAboveAgreesWithSimilarity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	thetas := []float64{0.0, 0.25, 0.5, 0.8, 0.9}
	for i := 0; i < 1000; i++ {
		a, b := randWord(rng, 10), randWord(rng, 10)
		theta := thetas[rng.Intn(len(thetas))]
		want := Similarity(a, b) > theta
		if got := SimilarAbove(a, b, theta); got != want {
			t.Fatalf("SimilarAbove(%q,%q,%v)=%v but Similarity=%f", a, b, theta, got, Similarity(a, b))
		}
	}
}

func TestQGrams(t *testing.T) {
	got := QGrams("abcd", 2)
	want := []string{"ab", "bc", "cd"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("QGrams = %v, want %v", got, want)
	}
	if g := QGrams("ab", 3); len(g) != 1 || g[0] != "ab" {
		t.Fatalf("short string should yield itself: %v", g)
	}
	if g := QGrams("", 2); len(g) != 1 || g[0] != "" {
		t.Fatalf("empty string yields one empty token: %v", g)
	}
	if g := QGrams("abc", 0); len(g) != 3 {
		t.Fatalf("q<1 clamps to 1: %v", g)
	}
}

func TestQGramsCount(t *testing.T) {
	f := func(s string, q uint8) bool {
		qq := int(q%5) + 1
		g := QGrams(s, qq)
		if len(s) <= qq {
			return len(g) == 1
		}
		return len(g) == len(s)-qq+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniqueQGrams(t *testing.T) {
	g := UniqueQGrams("aaaa", 2)
	if len(g) != 1 || g[0] != "aa" {
		t.Fatalf("UniqueQGrams(aaaa,2) = %v", g)
	}
}

func TestJaccard(t *testing.T) {
	if Jaccard("abc", "abc", 2) != 1 {
		t.Error("identical strings have Jaccard 1")
	}
	if Jaccard("", "", 2) != 1 {
		t.Error("two empties are similar")
	}
	j := Jaccard("abcd", "bcde", 2)
	// grams: {ab,bc,cd} vs {bc,cd,de}: inter 2, union 4.
	if j != 0.5 {
		t.Errorf("Jaccard = %f, want 0.5", j)
	}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 300; i++ {
		a, b := randWord(rng, 8), randWord(rng, 8)
		if Jaccard(a, b, 2) != Jaccard(b, a, 2) {
			t.Fatalf("Jaccard not symmetric for %q, %q", a, b)
		}
	}
}

func TestJaroWinkler(t *testing.T) {
	if JaroWinkler("martha", "martha") != 1 {
		t.Error("identical strings score 1")
	}
	if JaroWinkler("abc", "xyz") != 0 {
		t.Error("disjoint strings score 0")
	}
	jw := JaroWinkler("martha", "marhta")
	if jw < 0.94 || jw > 0.97 {
		t.Errorf("JaroWinkler(martha, marhta) = %f, want ≈0.961", jw)
	}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 300; i++ {
		a, b := randWord(rng, 8), randWord(rng, 8)
		s := JaroWinkler(a, b)
		if s < 0 || s > 1 {
			t.Fatalf("JaroWinkler(%q,%q)=%f out of range", a, b, s)
		}
	}
}

func TestMetricDispatch(t *testing.T) {
	if ParseMetric("  LD ") != MetricLevenshtein {
		t.Error("LD should parse to Levenshtein")
	}
	if ParseMetric("Jaccard") != MetricJaccard {
		t.Error("jaccard parse")
	}
	if ParseMetric("jw") != MetricJaroWinkler {
		t.Error("jw parse")
	}
	if ParseMetric("unknown") != MetricLevenshtein {
		t.Error("unknown metric defaults to Levenshtein")
	}
	for _, m := range []Metric{MetricLevenshtein, MetricJaccard, MetricJaroWinkler} {
		if m.Sim("same", "same") != 1 {
			t.Errorf("%s self-similarity should be 1", m)
		}
		if !m.Above("same", "same", 0.9) {
			t.Errorf("%s Above self should hold", m)
		}
	}
}

func TestMetricAboveAgreesWithSim(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, m := range []Metric{MetricLevenshtein, MetricJaccard, MetricJaroWinkler} {
		for i := 0; i < 300; i++ {
			a, b := randWord(rng, 8), randWord(rng, 8)
			theta := float64(rng.Intn(10)) / 10
			if got, want := m.Above(a, b, theta), m.Sim(a, b) > theta; got != want {
				t.Fatalf("%s.Above(%q,%q,%v)=%v, Sim=%f", m, a, b, theta, got, m.Sim(a, b))
			}
		}
	}
}

func TestPrefix(t *testing.T) {
	if Prefix("hello", 3) != "hel" {
		t.Error("prefix 3")
	}
	if Prefix("hi", 5) != "hi" {
		t.Error("short string returns itself")
	}
	if Prefix("abc", 0) != "" {
		t.Error("prefix 0 is empty")
	}
	if Prefix("abc", -1) != "" {
		t.Error("negative clamps to 0")
	}
}
