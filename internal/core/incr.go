package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"cleandb/internal/cleaning"
	"cleandb/internal/engine"
	"cleandb/internal/incr"
	"cleandb/internal/lang"
	"cleandb/internal/monoid"
	"cleandb/internal/physical"
	"cleandb/internal/sink"
	"cleandb/internal/types"
)

// This file is the core half of incremental execution: deciding whether a
// prepared statement can answer an appended-source re-execution with a delta
// pass, compiling the analyzed DENIAL/DEDUP structure into the delta
// detectors, and merging delta pairs into a cached Result so the outcome is
// bit-identical (rows, task rows, repair summaries) to a cold full re-clean.
//
// The bit-identity contract leans on two facts. First, every single-task
// DENIAL/DEDUP execution — cold or incremental — reports its pair rows in
// canonical key order (execute() sorts them), so "merge equals recompute" is
// well-defined without reconstructing a partition-dependent order. Second,
// append-only deltas never change old rows, so a cached pair set stays valid
// verbatim and the delta enumerators only add pairs touching fresh tuples.
// Of the execution metrics, rows/repairs are pinned; cost counters
// (SimTicks, Comparisons, shuffle volumes) measure the work actually done,
// which for an incremental run is the delta — that asymmetry is the point.

// IncrKind classifies what the incremental layer can do with a statement.
type IncrKind int

const (
	// IncrNone: the statement must re-execute in full (multiple tasks,
	// unified plans, plain queries, or an append-unstable blocker).
	IncrNone IncrKind = iota
	// IncrDenial: a single DENIAL task (detect-only or REPAIR).
	IncrDenial
	// IncrDedup: a single DEDUP task with an append-stable blocker.
	IncrDedup
)

// IncrInfo describes the incremental eligibility of a Prepared.
type IncrInfo struct {
	Kind IncrKind
	// Source is the one source the delta pass re-reads; appends to it can
	// be answered incrementally, any other change forces a full run.
	Source string
}

// Incremental reports whether this statement can be re-executed over an
// appended source by a delta pass plus a cached prior Result. Eligibility is
// structural (single task, single source, delta-decomposable operator); the
// caller still decides whether a suitable cached Result exists.
func (pr *Prepared) Incremental() IncrInfo {
	if len(pr.tasks) != 1 || pr.combined != nil {
		return IncrInfo{}
	}
	t := pr.tasks[0]
	switch {
	case t.Denial != nil:
		if len(pr.sources) != 1 {
			return IncrInfo{}
		}
		return IncrInfo{Kind: IncrDenial, Source: t.Denial.Source}
	case t.Dedup != nil:
		if len(pr.sources) != 1 || !appendStableBlocker(&t) {
			return IncrInfo{}
		}
		return IncrInfo{Kind: IncrDedup, Source: t.Dedup.Source}
	}
	return IncrInfo{}
}

// appendStableBlocker reports whether the task's blocking keys depend on
// nothing but the blocked row itself. Exact/attribute blocking, token
// filtering and length filtering qualify; a fitted blocker (k-means centers
// chosen from a data sample) does not — appending rows changes the fit, and
// with it the block keys of old rows, so the cached pair set would be
// computed against a different blocking than the delta's.
func appendStableBlocker(t *lang.Task) bool {
	spec := t.Dedup
	if spec.BlockerFn == "" {
		return true // exact value blocking: no builtin at all
	}
	b, ok := t.Blockers[spec.BlockerFn]
	if !ok {
		return false
	}
	switch strings.ToLower(strings.TrimSpace(b.Spec.Op)) {
	case "token_filtering", "tf", "token filtering", "length", "len":
		return true
	}
	return false
}

// Source returns the dataset this statement resolved for name at prepare
// time, nil when the statement does not read it. A view cache compares it
// by identity with the catalog's current dataset to know that the stamps it
// records describe exactly the data the execution saw — an append racing
// the execution makes the pointers differ and the view is simply not
// cached.
func (pr *Prepared) Source(name string) *engine.Dataset {
	return pr.sources[name]
}

// SourceNames lists the sources this statement resolved at prepare time,
// sorted — the set a materialized view of it must be stamped against.
func (pr *Prepared) SourceNames() []string {
	out := make([]string, 0, len(pr.sources))
	for name := range pr.sources {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DeltaBase hands ExecuteDeltaContext the cached prior execution: the
// Result computed when the source held BaseRows rows. Rows at global index
// >= BaseRows are the appended delta.
type DeltaBase struct {
	Res      *Result
	BaseRows int
}

// ExecuteDeltaContext re-executes this statement over an appended source by
// enumerating only the pairs that touch fresh rows and merging them into the
// cached prior Result. The returned Result's rows, task rows and repair
// summaries are bit-identical to ExecuteContext's over the same data; its
// cost counters reflect the delta work actually performed. The caller must
// have checked Incremental() and that base.Res was produced by an equivalent
// statement over the same base rows — this method trusts both.
func (pr *Prepared) ExecuteDeltaContext(goctx context.Context, params map[string]types.Value, base DeltaBase) (*Result, error) {
	for _, k := range pr.params {
		if _, ok := params[k]; !ok {
			return nil, fmt.Errorf("core: parameter %s is not bound", (&monoid.Param{Key: k}).String())
		}
	}
	info := pr.Incremental()
	if info.Kind == IncrNone {
		return nil, fmt.Errorf("core: statement is not incrementally executable")
	}
	if base.Res == nil || len(base.Res.Tasks) != 1 {
		return nil, fmt.Errorf("core: delta execution needs a cached single-task result")
	}
	src, ok := pr.sources[info.Source]
	if !ok {
		return nil, fmt.Errorf("core: source %q not in catalog", info.Source)
	}

	job := pr.pipeline.Ctx.Job(goctx)
	ds := src.WithContext(job)
	freshAt := func(i int, _ types.Value) bool { return i >= base.BaseRows }

	var merged []types.Value
	var keys []string
	var err error
	switch info.Kind {
	case IncrDenial:
		merged, keys, err = pr.denialDeltaRows(ds, freshAt, base, params)
	case IncrDedup:
		merged, keys, err = pr.dedupDeltaRows(ds, freshAt, base, params)
	}
	if err == nil {
		err = job.Err()
	}
	if err != nil {
		pr.pipeline.Ctx.Metrics().Merge(job.Metrics())
		return nil, err
	}

	res := &Result{Explanation: pr.explain, workers: job.Workers, canonKeys: keys}
	t := pr.tasks[0]
	tr := TaskResult{
		Name:   t.Name,
		Output: NewRowset(partitionRows(merged, job.Workers)),
		Plan:   pr.plans[0],
		Comp:   pr.norm[0],
	}
	if t.Denial != nil && t.Denial.RepairAttr != nil {
		// The merged pair list seeds the relaxation loop exactly as the cold
		// plan output would; RepairDC's own later rounds are incremental
		// either way, so cold and delta executions heal identically.
		ex := physical.NewExecutor(job, pr.sources)
		ex.Config = pr.pipeline.Config
		for name, fn := range pr.builtins {
			ex.AddBuiltin(name, fn)
		}
		ex.SetParams(params)
		sum, err := pr.runRepair(ex, &pr.tasks[0], pr.plans[0], merged, map[string]*engine.Dataset{}, params)
		if err != nil {
			pr.pipeline.Ctx.Metrics().Merge(job.Metrics())
			return nil, err
		}
		tr.Repair = sum
	}
	res.Tasks = append(res.Tasks, tr)

	pr.pipeline.Ctx.Metrics().Merge(job.Metrics())
	m := job.Metrics()
	simHits, simMisses := m.SimCacheStats()
	res.Stats = ExecStats{
		SimTicks:         m.SimTicks(),
		Comparisons:      m.Comparisons(),
		ShuffledRecords:  m.ShuffledRecords(),
		ShuffledBytes:    m.ShuffledBytes(),
		BatchesEvaluated: m.BatchesEvaluated(),
		SimCacheHits:     simHits,
		SimCacheMisses:   simMisses,
		Strategies:       m.Strategies(),
	}
	return res, nil
}

// denialDeltaRows merges the cached violation pairs with the fresh-touching
// ones (bag semantics: DENIAL emits every violating index pair). Both inputs
// are key-sorted runs — the cached view by the canonical-ordering contract,
// the fresh pairs by an explicit sort — so the merge re-serializes only the
// fresh pairs, not the whole cached output.
func (pr *Prepared) denialDeltaRows(ds *engine.Dataset, freshAt func(int, types.Value) bool, base DeltaBase, params map[string]types.Value) ([]types.Value, []string, error) {
	spec := pr.tasks[0].Denial
	cfg, err := compileDenialCheck(spec, pr.pipeline.Config.Theta, params)
	if err != nil {
		return nil, nil, err
	}
	pairs, err := cleaning.DeltaDCPairs(ds, freshAt, cfg)
	if err != nil {
		return nil, nil, err
	}
	prior := base.Res.Tasks[0].Output.Rows()
	priorKeys := base.Res.priorKeys(prior)
	fresh := make([]types.Value, len(pairs))
	for i, p := range pairs {
		fresh[i] = types.NewRecord(pairSchema, []types.Value{p[0], p[1]})
	}
	freshKeys := sortRowsByKey(fresh)
	rows, keys := mergeSortedRuns(prior, priorKeys, fresh, freshKeys)
	return rows, keys, nil
}

// dedupDeltaRows merges the cached duplicate pairs with the fresh-touching
// ones (set semantics: a pair reported for the base is skipped even when a
// value-identical fresh row rediscovers it). As with denialDeltaRows, only
// the fresh pairs are serialized and sorted; the cached run merges by its
// stored keys.
func (pr *Prepared) dedupDeltaRows(ds *engine.Dataset, freshAt func(int, types.Value) bool, base DeltaBase, params map[string]types.Value) ([]types.Value, []string, error) {
	d, err := pr.compileDedupDelta(params)
	if err != nil {
		return nil, nil, err
	}
	pairs, err := d.Pairs(ds, freshAt)
	if err != nil {
		return nil, nil, err
	}
	prior := base.Res.Tasks[0].Output.Rows()
	priorKeys := base.Res.priorKeys(prior)
	seen := make(map[string]bool, len(priorKeys))
	for _, k := range priorKeys {
		seen[k] = true
	}
	fresh := make([]types.Value, 0, len(pairs))
	for _, p := range pairs {
		r := types.NewRecord(pairSchema, []types.Value{p[0], p[1]})
		if k := types.Key(r); !seen[k] {
			seen[k] = true
			fresh = append(fresh, r)
		}
	}
	freshKeys := sortRowsByKey(fresh)
	rows, keys := mergeSortedRuns(prior, priorKeys, fresh, freshKeys)
	return rows, keys, nil
}

// priorKeys returns the canonical keys of the cached result's primary rows,
// reusing the keys recorded at sort time when they match and recomputing
// them otherwise (a defensive path for results that lost their keys).
func (r *Result) priorKeys(rows []types.Value) []string {
	if len(r.canonKeys) == len(rows) {
		return r.canonKeys
	}
	keys := make([]string, len(rows))
	for i, row := range rows {
		keys[i] = types.Key(row)
	}
	return keys
}

// mergeSortedRuns merges two key-sorted runs into one canonical ordering.
// Ties break toward the prior run, which keeps the merge stable; equal keys
// mean equal values, so the choice is unobservable. If either run is
// unexpectedly out of order (a corrupted cache), the result degrades to a
// full sort rather than a wrong answer.
func mergeSortedRuns(a []types.Value, aKeys []string, b []types.Value, bKeys []string) ([]types.Value, []string) {
	if !sort.StringsAreSorted(aKeys) || !sort.StringsAreSorted(bKeys) {
		rows := append(append(make([]types.Value, 0, len(a)+len(b)), a...), b...)
		return rows, sortRowsByKey(rows)
	}
	rows := make([]types.Value, 0, len(a)+len(b))
	keys := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if aKeys[i] <= bKeys[j] {
			rows, keys = append(rows, a[i]), append(keys, aKeys[i])
			i++
		} else {
			rows, keys = append(rows, b[j]), append(keys, bKeys[j])
			j++
		}
	}
	rows = append(append(rows, a[i:]...), b[j:]...)
	keys = append(append(keys, aKeys[i:]...), bKeys[j:]...)
	return rows, keys
}

// pairSchema is the {a, b} record shape of DENIAL and DEDUP task output.
var pairSchema = types.NewSchema("a", "b")

// compileDenialCheck compiles the analyzed DENIAL structure into the
// cleaning layer's check configuration, mirroring buildRepairConfig's
// predicate and filter compilation but without requiring a REPAIR clause:
// the band (when any same-attribute cross inequality exists) is only a
// pruning aid — any conjunct of the predicate is a sound necessary
// condition — so detect-only constraints without one still work, just
// without pruning.
func compileDenialCheck(spec *lang.DenialSpec, theta physical.ThetaStrategy, params map[string]types.Value) (cleaning.DCConfig, error) {
	var cfg cleaning.DCConfig
	comp := monoid.NewCompiler()
	comp.Params = params

	predCE, err := comp.Compile(spec.Pred, map[string]int{spec.Alias: 0, spec.SecondAlias: 1})
	if err != nil {
		return cfg, err
	}
	cfg.Pred = func(t1, t2 types.Value) bool {
		v, err := predCE([]types.Value{t1, t2})
		return err == nil && v.Bool()
	}

	if len(spec.T1Conjuncts) > 0 {
		f := spec.T1Conjuncts[0]
		for _, c := range spec.T1Conjuncts[1:] {
			f = &monoid.BinOp{Op: "and", L: f, R: c}
		}
		ce, err := comp.Compile(f, map[string]int{spec.Alias: 0})
		if err != nil {
			return cfg, err
		}
		cfg.LeftFilter = func(v types.Value) bool {
			out, err := ce([]types.Value{v})
			return err == nil && out.Bool()
		}
	}

	for _, c := range spec.CrossConjuncts {
		t1Expr, op, same := sameAttrInequality(c, spec)
		if t1Expr == nil || !same {
			continue
		}
		bandCE, err := comp.Compile(t1Expr, map[string]int{spec.Alias: 0})
		if err != nil {
			return cfg, err
		}
		cfg.Band = func(v types.Value) float64 {
			out, err := bandCE([]types.Value{v})
			if err != nil {
				return 0
			}
			return out.Float()
		}
		cfg.BandOp = op
		break
	}
	cfg.Strategy = theta
	return cfg, nil
}

// compileDedupDelta compiles the analyzed DEDUP structure into the delta
// detector's closures, with semantics identical to the desugared
// comprehension: WHERE filters, then blocking (through the same fitted
// builtin the plan uses), then the similar(metric, ..., theta) predicate.
func (pr *Prepared) compileDedupDelta(params map[string]types.Value) (incr.DedupDelta, error) {
	spec := pr.tasks[0].Dedup
	var d incr.DedupDelta
	comp := monoid.NewCompiler()
	comp.Params = params
	for name, fn := range pr.builtins {
		comp.Builtins[name] = fn
	}

	if len(spec.Where) > 0 {
		f := spec.Where[0]
		for _, c := range spec.Where[1:] {
			f = &monoid.BinOp{Op: "and", L: f, R: c}
		}
		ce, err := comp.Compile(f, map[string]int{spec.Alias: 0})
		if err != nil {
			return d, err
		}
		d.Keep = func(v types.Value) bool {
			out, err := ce([]types.Value{v})
			return err == nil && out.Bool()
		}
	}

	blockCE, err := comp.Compile(spec.BlockAttr, map[string]int{spec.Alias: 0})
	if err != nil {
		return d, err
	}
	if spec.BlockerFn == "" {
		// Exact blocking groups on the attribute value itself; the canonical
		// key encoding is the grouping equality.
		d.BlockKeys = func(v types.Value) ([]string, error) {
			out, err := blockCE([]types.Value{v})
			if err != nil {
				return nil, err
			}
			return []string{types.Key(out)}, nil
		}
	} else {
		blk, ok := pr.builtins[spec.BlockerFn]
		if !ok {
			return d, fmt.Errorf("core: blocker builtin %q not fitted", spec.BlockerFn)
		}
		d.BlockKeys = func(v types.Value) ([]string, error) {
			attr, err := blockCE([]types.Value{v})
			if err != nil {
				return nil, err
			}
			keys, err := blk([]types.Value{attr})
			if err != nil {
				return nil, err
			}
			list := keys.List()
			out := make([]string, len(list))
			for i, k := range list {
				out[i] = k.Str()
			}
			return out, nil
		}
	}

	pairExpr := &monoid.Call{Fn: "similar", Args: []monoid.Expr{
		monoid.CStr(spec.Metric),
		monoid.Substitute(spec.SimExpr, spec.Alias, monoid.V("$p1")),
		monoid.Substitute(spec.SimExpr, spec.Alias, monoid.V("$p2")),
		spec.ThetaExpr,
	}}
	pairCE, err := comp.Compile(pairExpr, map[string]int{"$p1": 0, "$p2": 1})
	if err != nil {
		return d, err
	}
	d.Pair = func(a, b types.Value) (bool, error) {
		out, err := pairCE([]types.Value{a, b})
		if err != nil {
			return false, err
		}
		return out.Bool(), nil
	}
	return d, nil
}

// canonicalPairTask reports whether the statement's single task is a
// DENIAL/DEDUP whose output execute() pins to canonical key order — the
// ordering contract that makes incremental merge ≡ cold recompute.
func (pr *Prepared) canonicalPairTask() bool {
	if pr.combined != nil || len(pr.tasks) != 1 {
		return false
	}
	return pr.tasks[0].Denial != nil || pr.tasks[0].Dedup != nil
}

// sortRowsByKey orders rows by their canonical key encoding and returns the
// keys in the sorted order. Equal keys mean equal values, so the order is
// total and any duplicates are interchangeable. Keys are computed once per
// row, not per comparison — pair rows serialize two full records each, which
// made comparator-time encoding the dominant cost of large DENIAL/DEDUP
// outputs.
func sortRowsByKey(rows []types.Value) []string {
	keyed := make([]struct {
		key string
		row types.Value
	}, len(rows))
	for i, r := range rows {
		keyed[i] = struct {
			key string
			row types.Value
		}{types.Key(r), r}
	}
	sort.Slice(keyed, func(i, j int) bool { return keyed[i].key < keyed[j].key })
	keys := make([]string, len(rows))
	for i := range keyed {
		rows[i], keys[i] = keyed[i].row, keyed[i].key
	}
	return keys
}

// ExportTo pumps the result's primary output into s exactly as
// ExecuteToContext does after execution: column batches drain directly when
// both sides support it, otherwise the partitioned rows are pumped with the
// result's own worker fan-out. It exists so a materialized view hit can
// serve a streaming export without re-executing.
func (r *Result) ExportTo(goctx context.Context, s sink.Sink) (int64, error) {
	var exported int64
	var err error
	handled := false
	if r.primaryDS != nil {
		if batches := r.primaryDS.Batches(); batches != nil {
			exported, handled, err = sink.PumpBatches(goctx, s, batches)
		}
	}
	if err == nil && !handled {
		w := r.workers
		if w < 1 {
			w = 1
		}
		exported, err = sink.Pump(goctx, s, r.Primary().Partitions(), w)
	}
	return exported, err
}
