// Package incr holds the incremental-cleaning primitives: an epoch-stamped
// materialized-view cache and the dedup delta detector. Together with
// cleaning.DeltaDCPairs they let a re-executed query over append-only sources
// run work proportional to the delta instead of the dataset — the cached
// view answers for the unchanged base, and only pairs touching appended
// tuples are enumerated.
//
// The cache is deliberately dumb about what it stores (a type parameter):
// the core layer caches *core.Result, the public DB wraps that, and tests
// cache strings. What the cache understands is freshness: every entry is
// stamped with the per-source (base generation, delta epoch) pair it was
// computed against, and a lookup classifies the entry as an exact hit (same
// stamps), a delta candidate (same bases, some newer delta epochs — the
// caller may run a delta pass and merge), or stale (a base changed: any
// reload that replaced partitions invalidates everything derived from them).
package incr

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Stamp freshness-stamps one source as an execution saw it.
type Stamp struct {
	// ID identifies the source entry (name plus registration identity, so a
	// re-registered source never matches its predecessor's stamps).
	ID string
	// Base is the source's base generation: bumped whenever the base
	// partitions are replaced (reload, re-register, widening re-scan).
	Base int64
	// Delta is the source's delta epoch: bumped on every append. Base rows
	// are unchanged across delta bumps — that is what makes a delta pass
	// sound.
	Delta int64
}

// Freshness classifies a cache entry against the stamps of the sources as
// they are now.
type Freshness int

const (
	// Stale: the entry's sources changed in a way a delta pass cannot
	// bridge (different source set, or a base generation moved).
	Stale Freshness = iota
	// Exact: every stamp matches — the cached value answers as-is.
	Exact
	// Appended: bases match but at least one source has a newer delta
	// epoch — the cached value plus a delta pass over the appended rows
	// reproduces the current answer.
	Appended
)

// Entry is a cached value with the stamps it was computed under.
type Entry[R any] struct {
	Val    R
	Stamps []Stamp
}

// Cache is a bounded LRU of materialized results keyed by a caller-chosen
// string (normalized query + config + parameters). Lookups classify entries
// by stamp freshness; stale entries are evicted on sight.
type Cache[R any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	index map[string]*list.Element

	hits, misses, deltaHits atomic.Int64
}

type cacheItem[R any] struct {
	key   string
	entry Entry[R]
}

// NewCache returns a view cache holding at most capacity entries; a
// non-positive capacity disables caching (every lookup misses, puts are
// dropped).
func NewCache[R any](capacity int) *Cache[R] {
	return &Cache[R]{cap: capacity, ll: list.New(), index: map[string]*list.Element{}}
}

// classify compares an entry's stamps with the current ones.
func classify(have, now []Stamp) Freshness {
	if len(have) != len(now) {
		return Stale
	}
	fresh := Exact
	for i, h := range have {
		n := now[i]
		if h.ID != n.ID || h.Base != n.Base || h.Delta > n.Delta {
			return Stale
		}
		if h.Delta < n.Delta {
			fresh = Appended
		}
	}
	return fresh
}

// Lookup finds the entry under key and classifies it against now (stamps in
// the same caller-canonical order Put used). A Stale entry is removed and
// reported as a miss. Exact lookups count as hits, Appended as delta hits —
// the caller is expected to merge a delta pass and Put the refreshed entry
// back.
func (c *Cache[R]) Lookup(key string, now []Stamp) (Entry[R], Freshness) {
	var zero Entry[R]
	if c == nil || c.cap <= 0 {
		return zero, Stale
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		c.misses.Add(1)
		return zero, Stale
	}
	it := el.Value.(*cacheItem[R])
	switch classify(it.entry.Stamps, now) {
	case Exact:
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		return it.entry, Exact
	case Appended:
		c.ll.MoveToFront(el)
		c.deltaHits.Add(1)
		return it.entry, Appended
	default:
		c.ll.Remove(el)
		delete(c.index, key)
		c.misses.Add(1)
		return zero, Stale
	}
}

// Put stores (or replaces) the entry under key, evicting the least recently
// used entry beyond capacity.
func (c *Cache[R]) Put(key string, val R, stamps []Stamp) {
	if c == nil || c.cap <= 0 {
		return
	}
	cp := append([]Stamp(nil), stamps...)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		el.Value.(*cacheItem[R]).entry = Entry[R]{Val: val, Stamps: cp}
		c.ll.MoveToFront(el)
		return
	}
	c.index[key] = c.ll.PushFront(&cacheItem[R]{key: key, entry: Entry[R]{Val: val, Stamps: cp}})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.index, last.Value.(*cacheItem[R]).key)
	}
}

// Purge drops every entry (catalog-shape changes: register, remove).
// Counters survive a purge.
func (c *Cache[R]) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.index = map[string]*list.Element{}
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	// Hits counts exact-stamp lookups answered from the cache; DeltaHits
	// counts lookups answered by a cached base plus a delta pass; Misses
	// counts everything else (absent or stale).
	Hits, Misses, DeltaHits int64
	// Entries is the current resident entry count.
	Entries int
}

// Stats returns the cache counters.
func (c *Cache[R]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	n := 0
	if c.ll != nil {
		n = c.ll.Len()
	}
	c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		DeltaHits: c.deltaHits.Load(),
		Entries:   n,
	}
}
