// Package sparksql simulates the Spark SQL baseline of the CleanM paper's
// evaluation (§8). It reuses the cleaning operations but locks in the
// behaviours the paper attributes to Catalyst-planned Spark:
//
//   - sort-based aggregation for every grouping (range partitioning of all
//     records; no map-side combine) — skew-sensitive;
//   - cartesian product + filter for theta joins — rule ψ does not finish;
//   - term validation via a cross product of data × dictionary with a
//     similarity UDF — non-interactive on realistic sizes;
//   - no cross-operation optimization: a multi-operator cleaning query runs
//     each operation standalone and combines the outputs with a full outer
//     join, ending up more expensive than separate execution;
//   - nested inputs must be flattened before relational processing when the
//     plan requires relational shapes (the experiments feed it both).
package sparksql

import (
	"errors"

	"cleandb/internal/cleaning"
	"cleandb/internal/engine"
	"cleandb/internal/physical"
	"cleandb/internal/textsim"
	"cleandb/internal/types"
)

// ErrNonInteractive marks operations the paper reports as not completing
// under Spark SQL (term validation cross products, rule ψ, full MAG dedup).
var ErrNonInteractive = errors.New("sparksql: job exceeded budget (non-interactive)")

// System is the simulated Spark SQL engine facade.
type System struct{}

// Name identifies the baseline in experiment reports.
func (System) Name() string { return "SparkSQL" }

// FDCheck checks a functional dependency with sort-based aggregation and a
// GROUP_CONCAT-style distinct-collecting UDAF (paper §8.3).
func (System) FDCheck(ds *engine.Dataset, lhs, rhs cleaning.Extract) *engine.Dataset {
	return cleaning.FDCheck(ds, lhs, rhs, physical.GroupSort)
}

// DCCheck evaluates an inequality denial constraint. Catalyst plans a
// cartesian product followed by a filter; on any realistic size this
// exhausts the work budget and the run is reported as DNF.
func (System) DCCheck(ds *engine.Dataset, cfg cleaning.DCConfig) (*engine.Dataset, error) {
	cfg.Strategy = physical.ThetaCartesian
	out, err := cleaning.DCCheck(ds, cfg)
	if errors.Is(err, engine.ErrBudgetExceeded) {
		return nil, ErrNonInteractive
	}
	return out, err
}

// Dedup blocks on the blocking attribute (Spark SQL can group by an
// attribute, but shuffles the entire dataset sort-based to do so) and
// compares within blocks.
func (System) Dedup(ds *engine.Dataset, cfg cleaning.DedupConfig) *engine.Dataset {
	cfg.Strategy = physical.GroupSort
	return cleaning.Dedup(ds, cfg)
}

// TermValidate validates terms by computing the cross product of the
// distinct terms and the dictionary with a similarity UDF — Spark SQL has no
// blocking operator the optimizer could use (paper §8.1). The context budget
// usually turns this into ErrNonInteractive.
func (System) TermValidate(ds *engine.Dataset, attr func(types.Value) string, dict []string, metric textsim.Metric, theta float64) (cleaning.TermValidationResult, error) {
	ctx := ds.Context()
	// Estimate the comparison cost up front, as the engine's cartesian
	// operators do, so hopeless jobs fail fast.
	distinct := map[string]struct{}{}
	for i := 0; i < ds.NumPartitions(); i++ {
		if err := ctx.Err(); err != nil {
			return cleaning.TermValidationResult{}, err
		}
		for _, v := range ds.Partition(i) {
			distinct[attr(v)] = struct{}{}
		}
	}
	cost := int64(len(distinct)) * int64(len(dict))
	if b := ctx.CompBudget; b > 0 && ctx.Metrics().Comparisons()+cost > b {
		ctx.Metrics().AddComparisons(b - ctx.Metrics().Comparisons())
		return cleaning.TermValidationResult{}, ErrNonInteractive
	}
	res := cleaning.TermValidate(ds, cleaning.TermValidationConfig{
		Attr:       attr,
		Dictionary: dict,
		Blocker:    nil, // cross product
		Metric:     metric,
		Theta:      theta,
		// The caller passed theta explicitly; an intentional zero threshold
		// must not be rewritten to cleaning.DefaultTheta.
		ThetaSet: true,
	})
	return res, nil
}

// UnifiedClean runs several cleaning operations as one Spark SQL query. The
// operations share the input scan, but Catalyst cannot detect the common
// grouping, so each operation shuffles independently and a full outer join
// combines the violation outputs — the paper's Figure 5 finding that unified
// execution is *more* expensive than standalone for Spark SQL.
func (System) UnifiedClean(ds *engine.Dataset, ops []func(*engine.Dataset) *engine.Dataset, entityKey engine.KeyFunc) *engine.Dataset {
	outs := make([]*engine.Dataset, len(ops))
	for i, op := range ops {
		outs[i] = op(ds)
	}
	// Full outer join of the violation outputs, by repeated sort-based
	// co-grouping (each join is a fresh shuffle of both sides).
	combined := outs[0]
	for i := 1; i < len(outs); i++ {
		left := combined
		right := outs[i]
		pairSchema := types.NewSchema("l", "r")
		joined := left.SortShuffleGroup("unified:couter",
			entityKey,
			engine.GroupAgg{Finish: func(key types.Value, group []types.Value) types.Value {
				return types.NewRecord(pairSchema, []types.Value{key, types.ListOf(group)})
			}})
		rightG := right.SortShuffleGroup("unified:router",
			entityKey,
			engine.GroupAgg{Finish: func(key types.Value, group []types.Value) types.Value {
				return types.NewRecord(pairSchema, []types.Value{key, types.ListOf(group)})
			}})
		combined = fullOuterByKey(joined, rightG)
	}
	return combined
}

// fullOuterByKey merges two {key, groups} datasets on key, keeping keys from
// either side.
func fullOuterByKey(a, b *engine.Dataset) *engine.Dataset {
	union := a.Union(b)
	return union.SortShuffleGroup("unified:merge",
		func(v types.Value) types.Value { return v.Field("l") },
		engine.GroupAgg{Finish: func(key types.Value, group []types.Value) types.Value {
			var all []types.Value
			for _, g := range group {
				all = append(all, g.Field("r").List()...)
			}
			return types.NewRecord(types.NewSchema("entity", "violations"),
				[]types.Value{key, types.ListOf(all)})
		}})
}
