// Package lintutil holds the type-resolution helpers shared by the cleanlint
// analyzers: static callee resolution, package/type identity tests that are
// robust to vendoring prefixes, and loop-invariance checks.
package lintutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// PathIs reports whether a package path denotes want: an exact match, or a
// suffix match on a path boundary (so "vendor/cleandb/internal/textsim"
// still counts as "cleandb/internal/textsim").
func PathIs(path, want string) bool {
	return path == want || strings.HasSuffix(path, "/"+want)
}

// PkgIs reports whether pkg's import path denotes want. A nil pkg (builtins,
// unsafe) never matches.
func PkgIs(pkg *types.Package, want string) bool {
	return pkg != nil && PathIs(pkg.Path(), want)
}

// Callee resolves the static callee of a call expression: a declared
// function or method. Calls through function-typed values, conversions and
// builtins yield nil.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsFunc reports whether fn is the package-level function pkgPath.name.
func IsFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Name() == name && PkgIs(fn.Pkg(), pkgPath) &&
		(fn.Signature() == nil || fn.Signature().Recv() == nil)
}

// IsMethod reports whether fn is the method pkgPath.recvType.name, looking
// through pointers on the receiver.
func IsMethod(fn *types.Func, pkgPath, recvType, name string) bool {
	if fn == nil || fn.Name() != name || !PkgIs(fn.Pkg(), pkgPath) {
		return false
	}
	sig := fn.Signature()
	if sig == nil || sig.Recv() == nil {
		return false
	}
	return NamedIs(sig.Recv().Type(), pkgPath, recvType)
}

// NamedIs reports whether t (after stripping pointers and aliases) is the
// named type pkgPath.name.
func NamedIs(t types.Type, pkgPath, name string) bool {
	n := NamedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && PkgIs(obj.Pkg(), pkgPath)
}

// NamedOf strips pointers and aliases from t and returns the named type
// underneath, or nil.
func NamedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// LoopInvariant reports whether every identifier used by expr is defined
// outside the given loop node — i.e. the expression's value cannot change
// across iterations (writes inside the loop to outer variables are not
// tracked; callers use this as a hoistability hint, not a proof).
func LoopInvariant(info *types.Info, expr ast.Expr, loop ast.Node) bool {
	invariant := true
	ast.Inspect(expr, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			// A call with side effects (interning!) is exactly what the
			// caller wants hoisted, so its presence does not break
			// invariance; its arguments are still inspected.
			_ = call
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		if obj.Pos() >= loop.Pos() && obj.Pos() < loop.End() {
			invariant = false
			return false
		}
		return true
	})
	return invariant
}

// IsContextErrCheck reports whether n polls job cancellation: a call to the
// Err method of context.Context or of the engine's job context, or a receive
// from a Done channel.
func IsContextErrCheck(info *types.Info, n ast.Node) bool {
	switch x := n.(type) {
	case *ast.CallExpr:
		fn := Callee(info, x)
		if fn == nil || (fn.Name() != "Err" && fn.Name() != "Done") {
			return false
		}
		sig := fn.Signature()
		if sig == nil || sig.Recv() == nil {
			return false
		}
		t := sig.Recv().Type()
		return NamedIs(t, "context", "Context") ||
			NamedIs(t, "cleandb/internal/engine", "Context") ||
			isContextInterface(t)
	}
	return false
}

// isContextInterface matches interface receivers that embed context.Context
// (the Err method of the stdlib interface itself).
func isContextInterface(t types.Type) bool {
	n := NamedOf(t)
	if n == nil {
		return false
	}
	return PkgIs(n.Obj().Pkg(), "context") && n.Obj().Name() == "Context"
}

// FuncScopes yields every function body in the file as an independent
// analysis scope: each declared function, and each function literal. A
// function literal is its own scope — closures handed to the engine's
// parallel drivers are the unit that must uphold per-loop invariants.
func FuncScopes(file *ast.File, visit func(name string, body *ast.BlockStmt, decl ast.Node)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn.Name.Name, fn.Body, fn)
			}
		case *ast.FuncLit:
			visit("func literal", fn.Body, fn)
		}
		return true
	})
}

// InspectScope walks body depth-first like ast.Inspect but does not descend
// into nested function literals — they are separate scopes.
func InspectScope(body *ast.BlockStmt, f func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return f(n)
	})
}
