package cleandb

import (
	"strings"
	"testing"
)

func demoDB() *DB {
	db := Open(WithWorkers(4))
	custSchema := NewSchema("name", "address", "phone", "nationkey")
	db.RegisterRows("customer", []Value{
		NewRecord(custSchema, []Value{String("alice"), String("12 oak st"), String("111-5550"), Int(1)}),
		NewRecord(custSchema, []Value{String("alicia"), String("12 oak st"), String("222-5551"), Int(1)}),
		NewRecord(custSchema, []Value{String("bob"), String("7 elm ave"), String("333-5552"), Int(2)}),
		NewRecord(custSchema, []Value{String("krol"), String("9 pine rd"), String("444-5553"), Int(3)}),
	})
	dictSchema := NewSchema("term")
	db.RegisterRows("dictionary", []Value{
		NewRecord(dictSchema, []Value{String("alice")}),
		NewRecord(dictSchema, []Value{String("bob")}),
		NewRecord(dictSchema, []Value{String("karol")}),
	})
	return db
}

func TestQueryPlain(t *testing.T) {
	db := demoDB()
	res, err := db.Query(`SELECT c.name AS n FROM customer c WHERE c.nationkey = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows()) != 2 {
		t.Fatalf("rows = %v", res.Rows())
	}
}

func TestQueryCleaningUnified(t *testing.T) {
	db := demoDB()
	res, err := db.Query(`
SELECT * FROM customer c, dictionary d
FD(c.address, prefix(c.phone))
CLUSTER BY(token_filtering, LD, 0.7, c.name)`)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) == 0 {
		t.Fatal("expected combined violations")
	}
	names := res.TaskNames()
	if len(names) != 2 || names[0] != "fd1" || names[1] != "clusterby1" {
		t.Fatalf("task names = %v", names)
	}
}

func TestExplainShowsAllLevels(t *testing.T) {
	db := demoDB()
	out, err := db.Explain(`SELECT * FROM customer c FD(c.address, c.nationkey) DEDUP(attribute, LD, 0.8, c.address, c.name)`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"comprehension", "groupby", "Nest", "shared node", "CombineAll"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestRegisterFormats(t *testing.T) {
	db := Open(WithWorkers(2))
	if err := db.RegisterCSV("t", strings.NewReader("a,b\n1,x\n2,y\n")); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterJSON("j", strings.NewReader(`{"a":1}`+"\n")); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterXML("x", strings.NewReader(`<r><e><a>1</a></e></r>`)); err != nil {
		t.Fatal(err)
	}
	got := db.Sources()
	if len(got) != 3 || got[0] != "j" || got[1] != "t" || got[2] != "x" {
		t.Fatalf("sources = %v", got)
	}
	rows, err := db.Rows("t")
	if err != nil || len(rows) != 2 {
		t.Fatalf("rows = %v, %v", rows, err)
	}
	if _, err := db.Rows("nope"); err == nil {
		t.Fatal("unknown source should error")
	}
}

func TestQueryErrors(t *testing.T) {
	db := demoDB()
	for _, q := range []string{
		`SELECT`,
		`SELECT * FROM nosuchtable n`,
		`SELECT * FROM customer c CLUSTER BY(tf, LD, 0.8, c.name)`, // no dictionary
	} {
		if _, err := db.Query(q); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
}

func TestMetricsAccumulateAndReset(t *testing.T) {
	db := demoDB()
	if _, err := db.Query(`SELECT c.name FROM customer c`); err != nil {
		t.Fatal(err)
	}
	if db.Metrics().SimTicks == 0 {
		t.Fatal("metrics should accumulate")
	}
	db.ResetMetrics()
	if db.Metrics().SimTicks != 0 {
		t.Fatal("reset should clear")
	}
}

func TestStandaloneOption(t *testing.T) {
	db := Open(WithWorkers(2), WithStandaloneOps())
	demoSrc := demoDB()
	rows, _ := demoSrc.Rows("customer")
	db.RegisterRows("customer", rows)
	res, err := db.Query(`
SELECT * FROM customer c
FD(c.address, c.nationkey)
DEDUP(attribute, LD, 0.5, c.address, c.name)`)
	if err != nil {
		t.Fatal(err)
	}
	// Standalone mode: no combined output, per-task outputs available.
	if _, ok := res.TaskRowCount("fd1"); !ok {
		t.Fatal("first task output expected")
	}
	n, ok := res.TaskRowCount("dedup1")
	if !ok {
		t.Fatal("dedup task output expected")
	}
	if len(res.TaskRows("dedup1")) != n {
		t.Fatalf("TaskRows disagrees with TaskRowCount: %d vs %d", len(res.TaskRows("dedup1")), n)
	}
	if res.RowCount() != len(res.Rows()) {
		t.Fatalf("RowCount %d != len(Rows) %d", res.RowCount(), len(res.Rows()))
	}
}
