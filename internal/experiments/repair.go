package experiments

import (
	"fmt"
	"time"

	"cleandb/internal/cleaning"
	"cleandb/internal/engine"
	"cleandb/internal/physical"
	"cleandb/internal/types"
)

// TableR1 extends Table 5 beyond detection: rule ψ violations are *repaired*
// by relaxing the discount predicate (Giannakopoulou et al., 2020), and the
// repair loop's detection joins run under each theta strategy. Cells report
// values-changed@rounds plus wall/ticks; a strategy whose detection join
// blows the comparison budget cannot repair at all and reports DNF — the
// repair-side continuation of the paper's Table 5 story.
func TableR1(s Scale) *Table {
	t := &Table{
		ID:      "Table R1",
		Title:   "Denial-constraint repair via relaxation (rule ψ + REPAIR(discount))",
		Columns: []string{"SF", "Rows", "Violations", "CleanDB", "SparkSQL", "BigDansing"},
	}
	strategies := []struct {
		strategy physical.ThetaStrategy
		pushdown bool
	}{
		// Only CleanDB's normalizer pushes the selective price filter below
		// the self join; the baselines evaluate the full predicate (§8.3).
		{physical.ThetaMBucket, true},
		{physical.ThetaCartesian, false},
		{physical.ThetaMinMax, false},
	}
	for _, sf := range fig6SFs {
		rows := genLineitemSF(s, sf)
		threshold := priceQuantile(rows, 0.0002)
		var violations int64 = -1
		cells := make([]string, len(strategies))
		for i, sys := range strategies {
			ctx := engine.NewContext(s.Workers)
			ctx.CompBudget = s.CompBudget
			ds := engine.FromValues(ctx, rows)
			cfg := repairConfigψ(threshold, sys.strategy, sys.pushdown)
			start := time.Now()
			res, err := cleaning.RepairDC(ds, cfg)
			if err != nil {
				cells[i] = DNF
				continue
			}
			if violations < 0 {
				violations = res.Violations
			}
			cells[i] = fmt.Sprintf("%d@%dr %s/%s", res.Changed, res.Rounds,
				ms(time.Since(start)), ticks(ctx.Metrics().SimTicks()))
			if res.Remaining != 0 {
				cells[i] += fmt.Sprintf(" (%d left)", res.Remaining)
			}
		}
		t.AddRow(fmt.Sprintf("%d", sf), fmt.Sprintf("%d", len(rows)),
			fmt.Sprintf("%d", violations), cells[0], cells[1], cells[2])
	}
	t.Note("cells are valuesChanged@rounds wall/ticks; comparison budget %d", s.CompBudget)
	t.Note("paper shape: only CleanDB's statistics-aware join survives detection, so only it can repair")
	return t
}

// repairConfigψ builds the rule-ψ repair configuration over lineitem.
func repairConfigψ(threshold float64, strategy physical.ThetaStrategy, pushdown bool) cleaning.DCRepairConfig {
	var leftFilter func(types.Value) bool
	if pushdown {
		leftFilter = func(v types.Value) bool {
			return v.Field("extendedprice").Float() < threshold
		}
	}
	return cleaning.DCRepairConfig{
		Check: cleaning.DCConfig{
			LeftFilter: leftFilter,
			Pred: func(t1, t2 types.Value) bool {
				return t1.Field("extendedprice").Float() < t2.Field("extendedprice").Float() &&
					t1.Field("discount").Float() > t2.Field("discount").Float() &&
					t1.Field("extendedprice").Float() < threshold
			},
			Band:     func(v types.Value) float64 { return v.Field("extendedprice").Float() },
			BandOp:   "<",
			Strategy: strategy,
		},
		RepairAttr: func(v types.Value) float64 { return v.Field("discount").Float() },
		RepairCol:  "discount",
		RepairOp:   ">",
	}
}
