// Denial constraints over TPC-H lineitem: the paper's §8.3 rules —
// φ: (orderkey, linenumber) → suppkey, a functional dependency, and
// ψ: ∀t1,t2 ¬(t1.price < t2.price ∧ t1.discount > t2.discount ∧ t1.price < X),
// a general inequality constraint that needs the statistics-aware theta
// join. The example also shows what happens to ψ under the baselines'
// join strategies (cartesian product, min/max block pruning).
//
//	go run ./examples/denial [-rows 30000]
package main

import (
	"flag"
	"fmt"
	"sort"

	"cleandb/internal/cleaning"
	"cleandb/internal/datagen"
	"cleandb/internal/engine"
	"cleandb/internal/physical"
	"cleandb/internal/types"
)

func main() {
	rows := flag.Int("rows", 30000, "lineitem rows")
	flag.Parse()

	items := datagen.GenLineitem(datagen.LineitemConfig{
		Rows: *rows, BaseRows: *rows / 4, NoiseRate: 0.10, Seed: 42,
	})
	fmt.Printf("lineitem: %d rows, 10%% noisy orderkeys\n\n", len(items))

	// --- Rule φ: functional dependency. ---
	ctx := engine.NewContext(8)
	ds := engine.FromValues(ctx, items)
	violations := cleaning.FDCheck(ds,
		cleaning.FieldsExtract("orderkey", "linenumber"),
		cleaning.FieldExtract("suppkey"),
		physical.GroupAggregate).Collect()
	fmt.Printf("rule φ (orderkey,linenumber → suppkey): %d violating groups, %d ticks\n",
		len(violations), ctx.Metrics().SimTicks())

	// --- Rule ψ: inequality denial constraint. ---
	prices := make([]float64, len(items))
	for i, r := range items {
		prices[i] = r.Field("extendedprice").Float()
	}
	sort.Float64s(prices)
	threshold := prices[len(prices)/5000+1] // ≈0.02% selectivity filter

	pred := func(t1, t2 types.Value) bool {
		return t1.Field("extendedprice").Float() < t2.Field("extendedprice").Float() &&
			t1.Field("discount").Float() > t2.Field("discount").Float() &&
			t1.Field("extendedprice").Float() < threshold
	}
	band := func(v types.Value) float64 { return v.Field("extendedprice").Float() }

	strategies := []struct {
		name     string
		strategy physical.ThetaStrategy
		pushdown bool
	}{
		{"CleanDB (M-Bucket + pushdown)", physical.ThetaMBucket, true},
		{"SparkSQL (cartesian+filter)", physical.ThetaCartesian, false},
		{"BigDansing (min/max blocks)", physical.ThetaMinMax, false},
	}
	fmt.Printf("\nrule ψ (price/discount inequality, price < %.1f):\n", threshold)
	for _, s := range strategies {
		ctx := engine.NewContext(8)
		ctx.CompBudget = 30_000_000
		ds := engine.FromValues(ctx, items)
		cfg := cleaning.DCConfig{Pred: pred, Band: band, BandOp: "<", Strategy: s.strategy}
		if s.pushdown {
			cfg.LeftFilter = func(v types.Value) bool {
				return v.Field("extendedprice").Float() < threshold
			}
		}
		out, err := cleaning.DCCheck(ds, cfg)
		if err != nil {
			fmt.Printf("  %-32s DNF (%v)\n", s.name, err)
			continue
		}
		fmt.Printf("  %-32s %d violating pairs, %d comparisons, %d ticks\n",
			s.name, out.Count(), ctx.Metrics().Comparisons(), ctx.Metrics().SimTicks())
	}
	fmt.Println("\nCleanM's normalization pushes the selective price filter below the")
	fmt.Println("self-join, and the M-Bucket operator prunes and balances the rest.")
}
