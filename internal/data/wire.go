package data

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"cleandb/internal/types"
)

// This file is the network wire format of the cleaning cluster: one slot of a
// distributed exchange travels as a single self-contained frame. Two payload
// shapes share the framing. Uniform flat record rows ship columnar — the same
// typed-vector layout as colbin, with a frame-local string dictionary (the
// "delta": exactly the strings those rows reference) that the receiver merges
// into its session dictionary via RemapDict. Everything else — nested join
// pairs, mixed-kind columns, scalar streams — ships through a generic
// recursive value codec that preserves types.Value bit-exactly (schema
// sharing, float bits, int/float distinction), so a remote slot output is
// indistinguishable from a locally computed one.
//
// Frame layout:
//
//	magic "CWX1" | type u8 | payload len u32 LE | payload | crc32(payload) u32 LE
//
// Decoding is fuzz-hardened: corrupt or truncated frames must error, never
// panic, and never allocate more than O(len(frame)) — every count read from
// the wire is capped by the bytes remaining to back it.

// Frame payload types.
const (
	frameRows     byte = 1 // generic recursive value codec
	frameBatch    byte = 2 // columnar vectors + dictionary delta
	frameScanVote byte = 3 // per-chunk CSV column-type votes (scanvote.go)
)

var wireMagic = [4]byte{'C', 'W', 'X', '1'}

const frameOverhead = 4 + 1 + 4 + 4 // magic + type + len + crc

// maxValueDepth bounds the recursion of the generic value codec; real rows
// nest a handful of levels, adversarial frames could otherwise nest one list
// per two payload bytes.
const maxValueDepth = 1000

// ErrFrameCorrupt is wrapped by every decode error.
var ErrFrameCorrupt = errors.New("data: corrupt wire frame")

func corrupt(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrFrameCorrupt, fmt.Sprintf(format, args...))
}

// EncodeRowsFrame encodes one slot's rows into a wire frame. Uniform flat
// record rows go columnar with a frame-local dictionary delta; anything else
// falls back to the generic value codec.
func EncodeRowsFrame(rows []types.Value) []byte {
	if len(rows) > 0 {
		if b := BatchFromRows(rows, NewDict()); b != nil && b.Schema != nil && len(b.Schema.Names) > 0 && batchWireable(b) {
			return sealFrame(frameBatch, encodeBatchPayload(b))
		}
	}
	return sealFrame(frameRows, encodeRowsPayload(rows))
}

// DecodeRowsFrame decodes a frame produced by EncodeRowsFrame. For columnar
// frames the frame-local dictionary is merged into dict via RemapDict when
// dict is non-nil, so decoded string codes stay comparable across the
// receiver's session. Round trip is bit-exact: types.Key of every decoded row
// equals types.Key of the encoded one.
func DecodeRowsFrame(buf []byte, dict *Dict) ([]types.Value, error) {
	typ, payload, err := openFrame(buf)
	if err != nil {
		return nil, err
	}
	switch typ {
	case frameRows:
		return decodeRowsPayload(payload)
	case frameBatch:
		return decodeBatchPayload(payload, dict)
	default:
		return nil, corrupt("unknown frame type %d", typ)
	}
}

// openFrame validates the framing — magic, declared payload length, crc —
// and returns the frame type with its payload. Shared by every frame decoder
// so a new payload type cannot forget a check.
func openFrame(buf []byte) (byte, []byte, error) {
	if len(buf) < frameOverhead {
		return 0, nil, corrupt("short frame: %d bytes", len(buf))
	}
	if [4]byte(buf[:4]) != wireMagic {
		return 0, nil, corrupt("bad magic %q", buf[:4])
	}
	typ := buf[4]
	plen := binary.LittleEndian.Uint32(buf[5:9])
	if int(plen) != len(buf)-frameOverhead {
		return 0, nil, corrupt("payload length %d does not match frame size %d", plen, len(buf))
	}
	payload := buf[9 : 9+plen]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(buf[9+plen:]); got != want {
		return 0, nil, corrupt("crc mismatch: computed %08x, frame says %08x", got, want)
	}
	return typ, payload, nil
}

func batchWireable(b *ColumnBatch) bool {
	for i := range b.Cols {
		if b.Cols[i].Kind == VecAny {
			return false
		}
	}
	return true
}

func sealFrame(typ byte, payload []byte) []byte {
	out := make([]byte, 0, frameOverhead+len(payload))
	out = append(out, wireMagic[:]...)
	out = append(out, typ)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return out
}

// ---- encoder ----

type wireWriter struct {
	buf []byte
	// strs interns every string of the frame (dictionary entries, schema
	// field names, plain strings) into one table written at the front.
	strs    []string
	strIdx  map[string]int
	schemas []*types.Schema
	schIdx  map[*types.Schema]int
}

func newWireWriter() *wireWriter {
	return &wireWriter{strIdx: make(map[string]int), schIdx: make(map[*types.Schema]int)}
}

func (w *wireWriter) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

func (w *wireWriter) svarint(v int64) { w.buf = binary.AppendUvarint(w.buf, zigzag(v)) }

func (w *wireWriter) float(f float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(f))
}

func (w *wireWriter) str(s string) int {
	if i, ok := w.strIdx[s]; ok {
		return i
	}
	i := len(w.strs)
	w.strs = append(w.strs, s)
	w.strIdx[s] = i
	return i
}

func (w *wireWriter) schema(s *types.Schema) int {
	if i, ok := w.schIdx[s]; ok {
		return i
	}
	for _, name := range s.Names {
		w.str(name)
	}
	i := len(w.schemas)
	w.schemas = append(w.schemas, s)
	w.schIdx[s] = i
	return i
}

// tables renders the string and schema tables that prefix every payload.
func (w *wireWriter) tables() []byte {
	var head []byte
	head = binary.AppendUvarint(head, uint64(len(w.strs)))
	for _, s := range w.strs {
		head = binary.AppendUvarint(head, uint64(len(s)))
		head = append(head, s...)
	}
	head = binary.AppendUvarint(head, uint64(len(w.schemas)))
	for _, sc := range w.schemas {
		head = binary.AppendUvarint(head, uint64(len(sc.Names)))
		for _, name := range sc.Names {
			head = binary.AppendUvarint(head, uint64(w.strIdx[name]))
		}
	}
	return append(head, w.buf...)
}

// Value tags of the generic codec.
const (
	tagNull byte = iota
	tagFalse
	tagTrue
	tagInt
	tagFloat
	tagString
	tagList
	tagRecord
)

func (w *wireWriter) value(v types.Value) {
	switch v.Kind() {
	case types.KindNull:
		w.buf = append(w.buf, tagNull)
	case types.KindBool:
		if v.Bool() {
			w.buf = append(w.buf, tagTrue)
		} else {
			w.buf = append(w.buf, tagFalse)
		}
	case types.KindInt:
		w.buf = append(w.buf, tagInt)
		w.svarint(v.Int())
	case types.KindFloat:
		w.buf = append(w.buf, tagFloat)
		w.float(v.Float())
	case types.KindString:
		w.buf = append(w.buf, tagString)
		w.uvarint(uint64(w.str(v.Str())))
	case types.KindList:
		l := v.List()
		w.buf = append(w.buf, tagList)
		w.uvarint(uint64(len(l)))
		for _, e := range l {
			w.value(e)
		}
	case types.KindRecord:
		rec := v.Record()
		w.buf = append(w.buf, tagRecord)
		w.uvarint(uint64(w.schema(rec.Schema)))
		for _, f := range rec.Fields {
			w.value(f)
		}
	}
}

func encodeRowsPayload(rows []types.Value) []byte {
	w := newWireWriter()
	w.uvarint(uint64(len(rows)))
	for _, v := range rows {
		w.value(v)
	}
	return w.tables()
}

func encodeBatchPayload(b *ColumnBatch) []byte {
	w := newWireWriter()
	// The batch was built with a fresh frame-local dictionary, so its entry
	// table is exactly the delta this frame introduces; interning it first
	// keeps the wire codes equal to the batch codes.
	for _, s := range b.Dict.Snapshot() {
		w.str(s)
	}
	w.uvarint(uint64(w.schema(b.Schema)))
	w.uvarint(uint64(b.N))
	for ci := range b.Cols {
		col := &b.Cols[ci]
		w.buf = append(w.buf, byte(col.Kind))
		if col.Nulls != nil {
			w.buf = append(w.buf, 1)
			for _, word := range col.Nulls {
				w.buf = binary.LittleEndian.AppendUint64(w.buf, word)
			}
		} else {
			w.buf = append(w.buf, 0)
		}
		switch col.Kind {
		case VecInt:
			for _, x := range col.Ints {
				w.svarint(x)
			}
		case VecFloat:
			for _, f := range col.Floats {
				w.float(f)
			}
		case VecBool:
			for _, bo := range col.Bools {
				if bo {
					w.buf = append(w.buf, 1)
				} else {
					w.buf = append(w.buf, 0)
				}
			}
		case VecStr:
			for _, c := range col.Codes {
				w.uvarint(uint64(c))
			}
		}
	}
	return w.tables()
}

// ---- decoder ----

type wireReader struct {
	buf     []byte
	off     int
	strs    []string
	schemas []*types.Schema
}

func (r *wireReader) remaining() int { return len(r.buf) - r.off }

func (r *wireReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, corrupt("truncated varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// count reads a length-prefix and rejects values no payload of this size
// could back: every counted element costs at least one byte, so a count
// beyond the remaining bytes is corruption, and honoring it would let a
// 20-byte frame demand a multi-gigabyte allocation.
func (r *wireReader) count() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(r.remaining()) {
		return 0, corrupt("count %d exceeds %d remaining payload bytes", v, r.remaining())
	}
	return int(v), nil
}

func (r *wireReader) svarint() (int64, error) {
	v, err := r.uvarint()
	return unzigzag(v), err
}

func (r *wireReader) take(n int) ([]byte, error) {
	if n < 0 || n > r.remaining() {
		return nil, corrupt("need %d bytes, have %d", n, r.remaining())
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *wireReader) byte() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *wireReader) float() (float64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

func (r *wireReader) tables() error {
	ns, err := r.count()
	if err != nil {
		return err
	}
	r.strs = make([]string, ns)
	for i := range r.strs {
		n, err := r.count()
		if err != nil {
			return err
		}
		b, err := r.take(n)
		if err != nil {
			return err
		}
		r.strs[i] = string(b)
	}
	nsch, err := r.count()
	if err != nil {
		return err
	}
	r.schemas = make([]*types.Schema, nsch)
	for i := range r.schemas {
		nf, err := r.count()
		if err != nil {
			return err
		}
		names := make([]string, nf)
		for j := range names {
			idx, err := r.uvarint()
			if err != nil {
				return err
			}
			if idx >= uint64(len(r.strs)) {
				return corrupt("schema field name index %d out of range %d", idx, len(r.strs))
			}
			names[j] = r.strs[idx]
		}
		r.schemas[i] = types.NewSchema(names...)
	}
	return nil
}

func (r *wireReader) value(depth int) (types.Value, error) {
	if depth > maxValueDepth {
		return types.Value{}, corrupt("value nesting exceeds %d", maxValueDepth)
	}
	tag, err := r.byte()
	if err != nil {
		return types.Value{}, err
	}
	switch tag {
	case tagNull:
		return types.Null(), nil
	case tagFalse:
		return types.Bool(false), nil
	case tagTrue:
		return types.Bool(true), nil
	case tagInt:
		x, err := r.svarint()
		return types.Int(x), err
	case tagFloat:
		f, err := r.float()
		return types.Float(f), err
	case tagString:
		idx, err := r.uvarint()
		if err != nil {
			return types.Value{}, err
		}
		if idx >= uint64(len(r.strs)) {
			return types.Value{}, corrupt("string index %d out of range %d", idx, len(r.strs))
		}
		return types.String(r.strs[idx]), nil
	case tagList:
		n, err := r.count()
		if err != nil {
			return types.Value{}, err
		}
		elems := make([]types.Value, n)
		for i := range elems {
			if elems[i], err = r.value(depth + 1); err != nil {
				return types.Value{}, err
			}
		}
		return types.ListOf(elems), nil
	case tagRecord:
		idx, err := r.uvarint()
		if err != nil {
			return types.Value{}, err
		}
		if idx >= uint64(len(r.schemas)) {
			return types.Value{}, corrupt("schema index %d out of range %d", idx, len(r.schemas))
		}
		schema := r.schemas[idx]
		fields := make([]types.Value, len(schema.Names))
		for i := range fields {
			if fields[i], err = r.value(depth + 1); err != nil {
				return types.Value{}, err
			}
		}
		return types.NewRecord(schema, fields), nil
	default:
		return types.Value{}, corrupt("unknown value tag %d", tag)
	}
}

func decodeRowsPayload(payload []byte) ([]types.Value, error) {
	r := &wireReader{buf: payload}
	if err := r.tables(); err != nil {
		return nil, err
	}
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	rows := make([]types.Value, n)
	for i := range rows {
		if rows[i], err = r.value(0); err != nil {
			return nil, err
		}
	}
	if r.remaining() != 0 {
		return nil, corrupt("%d trailing payload bytes", r.remaining())
	}
	return rows, nil
}

func decodeBatchPayload(payload []byte, dict *Dict) ([]types.Value, error) {
	r := &wireReader{buf: payload}
	if err := r.tables(); err != nil {
		return nil, err
	}
	schIdx, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if schIdx >= uint64(len(r.schemas)) {
		return nil, corrupt("schema index %d out of range %d", schIdx, len(r.schemas))
	}
	schema := r.schemas[schIdx]
	if len(schema.Names) == 0 {
		return nil, corrupt("columnar frame with zero columns")
	}
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	frameDict := NewDict()
	for _, s := range r.strs {
		frameDict.Code(s)
	}
	b := &ColumnBatch{Schema: schema, Dict: frameDict, Cols: make([]Column, len(schema.Names)), N: n}
	for ci := range b.Cols {
		kindB, err := r.byte()
		if err != nil {
			return nil, err
		}
		kind := VecKind(kindB)
		if kind == VecAny || kind > VecStr {
			return nil, corrupt("column %d: invalid vector kind %d", ci, kindB)
		}
		col := Column{Kind: kind}
		hasNulls, err := r.byte()
		if err != nil {
			return nil, err
		}
		switch hasNulls {
		case 0:
		case 1:
			words := (n + 63) / 64
			raw, err := r.take(words * 8)
			if err != nil {
				return nil, err
			}
			col.Nulls = make([]uint64, words)
			for wi := range col.Nulls {
				col.Nulls[wi] = binary.LittleEndian.Uint64(raw[wi*8:])
			}
		default:
			return nil, corrupt("column %d: invalid null-bitmap flag %d", ci, hasNulls)
		}
		switch kind {
		case VecInt:
			col.Ints = make([]int64, n)
			for i := range col.Ints {
				if col.Ints[i], err = r.svarint(); err != nil {
					return nil, err
				}
			}
		case VecFloat:
			raw, err := r.take(n * 8)
			if err != nil {
				return nil, err
			}
			col.Floats = make([]float64, n)
			for i := range col.Floats {
				col.Floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
			}
		case VecBool:
			raw, err := r.take(n)
			if err != nil {
				return nil, err
			}
			col.Bools = make([]bool, n)
			for i, by := range raw {
				if by > 1 {
					return nil, corrupt("column %d: invalid bool byte %d", ci, by)
				}
				col.Bools[i] = by == 1
			}
		case VecStr:
			col.Codes = make([]uint32, n)
			for i := range col.Codes {
				code, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				if code >= uint64(len(r.strs)) {
					return nil, corrupt("column %d: dictionary code %d out of range %d", ci, code, len(r.strs))
				}
				col.Codes[i] = uint32(code)
			}
		}
		b.Cols[ci] = col
	}
	if r.remaining() != 0 {
		return nil, corrupt("%d trailing payload bytes", r.remaining())
	}
	if dict != nil {
		b.RemapDict(dict)
	}
	return b.Rows(), nil
}

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
