// Command experiments regenerates every table and figure of the CleanM
// paper's evaluation (§8) at laptop scale, plus the ablation suite for the
// design choices DESIGN.md calls out. See EXPERIMENTS.md for the recorded
// paper-vs-measured comparison.
//
// Usage:
//
//	go run ./cmd/experiments [-scale 1.0] [-only "Table 3,Figure 5"] [-ablations]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cleandb/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "size multiplier over the default scale")
	only := flag.String("only", "", "comma-separated table/figure IDs to run (default all)")
	ablations := flag.Bool("ablations", true, "also run the ablation suite")
	workers := flag.Int("workers", 8, "simulated cluster width")
	flag.Parse()

	s := experiments.DefaultScale()
	s.Workers = *workers
	if *scale != 1.0 {
		s.RowsPerSF = int(float64(s.RowsPerSF) * *scale)
		s.Customers = int(float64(s.Customers) * *scale)
		s.DBLPPubs = int(float64(s.DBLPPubs) * *scale)
		s.DBLPDedupPubs = int(float64(s.DBLPDedupPubs) * *scale)
		s.MAGRows = int(float64(s.MAGRows) * *scale)
		s.AuthorPool = int(float64(s.AuthorPool) * *scale)
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(id)
		if id != "" {
			want[strings.ToLower(id)] = true
		}
	}
	selected := func(id string) bool {
		return len(want) == 0 || want[strings.ToLower(id)]
	}

	start := time.Now()
	fmt.Printf("CleanDB experiment suite — reproducing the evaluation of\n")
	fmt.Printf("\"CleanM: An Optimizable Query Language for Unified Scale-Out Data Cleaning\" (VLDB 2017)\n")
	fmt.Printf("scale ×%.2f, %d workers; cells show wall-clock and/or simulated ticks\n\n", *scale, s.Workers)

	ran := 0
	for _, t := range experiments.All(s) {
		if !selected(t.ID) {
			continue
		}
		fmt.Println(t)
		ran++
	}
	if *ablations {
		for _, t := range experiments.Ablations(s) {
			if !selected(t.ID) {
				continue
			}
			fmt.Println(t)
			ran++
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched -only=%q\n", *only)
		os.Exit(1)
	}
	fmt.Printf("suite completed in %s\n", time.Since(start).Round(time.Millisecond))
}
