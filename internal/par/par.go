// Package par holds the bounded-worker fan-out driver and the contiguous
// chunker shared by the data-movement layers: source scans, sink exports and
// result re-partitioning all drive CPU-bound per-chunk work the same way,
// and keeping one implementation means cancellation ordering and the
// GOMAXPROCS cap cannot drift apart between the input and output halves of
// the data-source API.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Run executes f(0..n-1) on at most width goroutines, stopping at the first
// error or at ctx cancellation (in which case it returns ctx.Err()). Every
// started goroutine exits before it returns. The work is CPU-bound by
// assumption, so the goroutine count is additionally capped at GOMAXPROCS —
// the n callers ask for is honored regardless, but on a small machine extra
// goroutines are pure scheduling overhead.
func Run(ctx context.Context, n, width int, f func(i int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	if width > n {
		width = n
	}
	if p := runtime.GOMAXPROCS(0); width > p {
		width = p
	}
	if width <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := f(i); err != nil {
				return err
			}
		}
		return ctx.Err()
	}
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
	)
	wg.Add(width)
	for w := 0; w < width; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() || ctx.Err() != nil {
					return
				}
				if err := f(i); err != nil {
					errOnce.Do(func() { firstErr = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Chunks slices vs into at most n contiguous chunks without copying,
// mirroring the engine's default partitioner so chunked data lands exactly
// like pre-partitioned data. Returns nil for empty input.
func Chunks[T any](vs []T, n int) [][]T {
	if len(vs) == 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	per := (len(vs) + n - 1) / n
	var out [][]T
	for lo := 0; lo < len(vs); lo += per {
		hi := lo + per
		if hi > len(vs) {
			hi = len(vs)
		}
		out = append(out, vs[lo:hi])
	}
	return out
}
