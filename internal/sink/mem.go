package sink

import (
	"fmt"
	"sync"

	"cleandb/internal/types"
)

// Mem collects results in memory, preserving the partition structure. It is
// the sink twin of source.Mem: tests and programmatic consumers receive
// exactly the partitions the engine produced, and Rows gives the ordered
// concatenation when partition boundaries don't matter.
type Mem struct {
	collector

	mu     sync.Mutex
	schema []string
	opened bool
}

// NewMem returns an empty in-memory sink.
func NewMem() *Mem { return &Mem{} }

// Open implements Sink.
func (s *Mem) Open(schema []string) error {
	s.mu.Lock()
	s.schema = schema
	s.opened = true
	s.mu.Unlock()
	s.reset()
	return nil
}

// WritePartition implements Sink by retaining the partition slice (shared,
// not copied). Safe for concurrent calls with distinct indices.
func (s *Mem) WritePartition(i int, rows []types.Value) error {
	s.mu.Lock()
	opened := s.opened
	s.mu.Unlock()
	if !opened {
		return fmt.Errorf("sink: mem: WritePartition before Open")
	}
	s.add(i, rows)
	return nil
}

// Close implements Sink.
func (s *Mem) Close() error { return nil }

// Schema returns the column names the sink was opened with (nil for
// non-record or empty results).
func (s *Mem) Schema() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.schema
}

// Partitions returns the written partitions in index order; missing indices
// (an aborted export) appear as nil entries.
func (s *Mem) Partitions() [][]types.Value { return s.snapshot() }

// Rows returns the ordered concatenation of every written partition.
func (s *Mem) Rows() []types.Value {
	parts := s.snapshot()
	var n int
	for _, p := range parts {
		n += len(p)
	}
	out := make([]types.Value, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
