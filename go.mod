module cleandb

go 1.24
