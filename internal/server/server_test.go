package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cleandb"
	"cleandb/internal/datagen"
	"cleandb/internal/source"
	"cleandb/internal/types"
)

// newTestServer mounts a Server over db on an httptest listener.
func newTestServer(t testing.TB, db *cleandb.DB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(db, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// customerDB is a DB with a 400-row customer source.
func customerDB(t testing.TB) *cleandb.DB {
	t.Helper()
	db := cleandb.Open(cleandb.WithWorkers(4))
	db.RegisterRows("customer",
		datagen.GenCustomer(datagen.CustomerConfig{Rows: 400, DupRate: 0.1, MaxDups: 4, Seed: 11}).Rows)
	return db
}

// countLines counts non-empty lines of a response body.
func countLines(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) != "" {
			n++
		}
	}
	return n, sc.Err()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// settleGoroutines waits for the goroutine count to return to (near) its
// baseline — the leak check of the cancellation tests.
func settleGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before %d, after %d", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// gateSource is a Source whose Scan blocks until released (or cancelled),
// recording whether it observed the cancellation — how the tests hold a
// query provably in flight and prove that a dropped client reaches the job
// context.
type gateSource struct {
	startOnce sync.Once
	started   chan struct{}
	release   chan struct{}
	sawCancel atomic.Bool
}

func newGate() *gateSource {
	return &gateSource{started: make(chan struct{}), release: make(chan struct{})}
}

func (g *gateSource) Format() string               { return "mem" }
func (g *gateSource) Schema() ([]string, error)    { return nil, nil }
func (g *gateSource) Stats() (source.Stats, error) { return source.Stats{Rows: -1, Bytes: -1}, nil }

func (g *gateSource) Scan(ctx context.Context, parts int) ([][]types.Value, error) {
	g.startOnce.Do(func() { close(g.started) })
	select {
	case <-ctx.Done():
		g.sawCancel.Store(true)
		return nil, ctx.Err()
	case <-g.release:
		schema := types.NewSchema("id")
		return [][]types.Value{{types.NewRecord(schema, []types.Value{types.Int(1)})}}, nil
	}
}

// --- streaming queries -------------------------------------------------------

func TestConcurrentStreamingQueries(t *testing.T) {
	db := customerDB(t)
	_, ts := newTestServer(t, db, Config{MaxInflight: 64})
	// Expected counts per nation, computed in-process.
	want := map[int]int{}
	for n := 1; n <= 4; n++ {
		res, err := db.Query(`SELECT c.name FROM customer c WHERE c.nationkey = ?`, int64(n))
		if err != nil {
			t.Fatal(err)
		}
		want[n] = res.RowCount()
	}
	const goroutines = 32
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				nation := (g+i)%4 + 1
				body := fmt.Sprintf(
					`{"query":"SELECT c.name FROM customer c WHERE c.nationkey = :n","params":{"n":%d}}`, nation)
				resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				lines, err := countLines(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status = %d", resp.StatusCode)
					return
				}
				if lines != want[nation] {
					errs <- fmt.Errorf("nation %d: rows = %d, want %d", nation, lines, want[nation])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestStreamingTrailersAndFormats(t *testing.T) {
	db := customerDB(t)
	_, ts := newTestServer(t, db, Config{})
	ref, err := db.Query(`SELECT c.name FROM customer c`)
	if err != nil {
		t.Fatal(err)
	}
	total := ref.RowCount()

	// NDJSON (default): every line parses, trailers carry the result facts.
	resp, err := http.Post(ts.URL+"/v1/query", "text/plain",
		strings.NewReader(`SELECT c.name FROM customer c`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != formatNDJSON {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		var row map[string]any
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines, err)
		}
		lines++
	}
	if lines != total {
		t.Fatalf("rows = %d, want %d", lines, total)
	}
	// Trailers are populated only after the body is fully consumed.
	if got := resp.Trailer.Get("Cleandb-Row-Count"); got != fmt.Sprint(total) {
		t.Fatalf("Cleandb-Row-Count trailer = %q, want %d", got, total)
	}
	if got := resp.Trailer.Get("Cleandb-Sim-Ticks"); got == "" || got == "0" {
		t.Fatalf("Cleandb-Sim-Ticks trailer = %q", got)
	}

	// CSV by Accept: header row + data rows.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/query",
		strings.NewReader(`SELECT c.name, c.nationkey FROM customer c`))
	req.Header.Set("Accept", "text/csv")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != formatCSV {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp2.Body)
	if !strings.HasPrefix(string(body), "name,nationkey\n") {
		t.Fatalf("csv header missing: %q", string(body[:min(40, len(body))]))
	}
	if n := strings.Count(string(body), "\n"); n != total+1 {
		t.Fatalf("csv lines = %d, want %d (header + rows)", n, total+1)
	}

	// An Accept nothing can satisfy is a 406, not a silent default.
	req, _ = http.NewRequest("POST", ts.URL+"/v1/query",
		strings.NewReader(`SELECT c.name FROM customer c`))
	req.Header.Set("Accept", "application/xml")
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotAcceptable {
		t.Fatalf("status = %d, want 406", resp3.StatusCode)
	}
}

func TestQueryEnvelopeWithRepairs(t *testing.T) {
	db := cleandb.Open(cleandb.WithWorkers(4))
	db.RegisterRows("lineitem", datagen.GenLineitem(datagen.LineitemConfig{Rows: 2000, Seed: 9}))
	_, ts := newTestServer(t, db, Config{})
	q := `SELECT * FROM lineitem t1
DENIAL(t2, t1.extendedprice < t2.extendedprice and t1.discount > t2.discount and t1.extendedprice < 905)
REPAIR(t1.discount)`
	resp, err := http.Post(ts.URL+"/v1/query?include=repairs", "text/plain", strings.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var env queryEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if len(env.Repairs) != 1 {
		t.Fatalf("repairs = %+v, want one summary", env.Repairs)
	}
	r := env.Repairs[0]
	if r.Source != "lineitem" || r.Col != "discount" || r.Changed == 0 || r.Remaining != 0 {
		t.Fatalf("repair summary = %+v", r)
	}
	if env.Metrics.Comparisons == 0 {
		t.Fatalf("metrics = %+v", env.Metrics)
	}
	if len(env.Rows) != env.RowCount {
		t.Fatalf("rows = %d, row_count = %d", len(env.Rows), env.RowCount)
	}
}

// --- admission control -------------------------------------------------------

func TestAdmissionControl429(t *testing.T) {
	db := cleandb.Open(cleandb.WithWorkers(2))
	g := newGate()
	db.RegisterSource("gated", g)
	srv, ts := newTestServer(t, db, Config{MaxInflight: 1})

	done := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/query", "text/plain", strings.NewReader(`SELECT g.id FROM gated g`))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("first query status = %d", resp.StatusCode)
			}
		}
		done <- err
	}()
	<-g.started // the one admission slot is now provably occupied

	resp, err := http.Post(ts.URL+"/v1/query", "text/plain", strings.NewReader(`SELECT g.id FROM gated g`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 should carry Retry-After")
	}
	if srv.qRejected.Load() != 1 {
		t.Fatalf("rejected counter = %d", srv.qRejected.Load())
	}

	close(g.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// With the slot free again, the same query is admitted.
	resp, err = http.Post(ts.URL+"/v1/query", "text/plain", strings.NewReader(`SELECT g.id FROM gated g`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release status = %d", resp.StatusCode)
	}
}

// --- cancellation ------------------------------------------------------------

func TestClientDisconnectCancelsJob(t *testing.T) {
	db := cleandb.Open(cleandb.WithWorkers(2))
	g := newGate()
	db.RegisterSource("gated", g)
	srv, ts := newTestServer(t, db, Config{})
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/query",
		strings.NewReader(`SELECT g.id FROM gated g`))
	if err != nil {
		t.Fatal(err)
	}
	clientDone := make(chan struct{})
	go func() {
		defer close(clientDone)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-g.started // the query is provably running server-side
	cancel()    // the client walks away
	<-clientDone

	// The dropped connection must cancel the query's job context — observed
	// by the source blocked inside the engine-side load — and account the
	// execution as canceled, not failed.
	waitFor(t, "job context cancellation", func() bool { return g.sawCancel.Load() })
	waitFor(t, "canceled accounting", func() bool { return srv.qCanceled.Load() == 1 })
	waitFor(t, "in-flight drain", func() bool { return srv.inflight.Load() == 0 })
	if srv.qFailed.Load() != 0 {
		t.Fatalf("canceled query counted as failed")
	}
	settleGoroutines(t, before)
}

func TestMidStreamDisconnectAborts(t *testing.T) {
	// A result far larger than the connection buffers: the server is
	// guaranteed to still be pumping partitions when the client hangs up.
	db := cleandb.Open(cleandb.WithWorkers(4))
	schema := types.NewSchema("id", "pad")
	pad := strings.Repeat("x", 64)
	rows := make([]types.Value, 200_000)
	for i := range rows {
		rows[i] = types.NewRecord(schema, []types.Value{types.Int(int64(i)), types.String(pad)})
	}
	db.RegisterRows("big", rows)
	srv, ts := newTestServer(t, db, Config{})
	before := runtime.NumGoroutine()

	resp, err := http.Post(ts.URL+"/v1/query", "text/plain", strings.NewReader(`SELECT b.id, b.pad FROM big b`))
	if err != nil {
		t.Fatal(err)
	}
	// Read a little of the stream, then drop the connection mid-body.
	if _, err := io.ReadFull(resp.Body, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The abort must reach a terminal state (no wedged pump), release the
	// admission slot and leak nothing.
	waitFor(t, "terminal accounting", func() bool {
		return srv.qFailed.Load()+srv.qCanceled.Load() == 1
	})
	waitFor(t, "in-flight drain", func() bool { return srv.inflight.Load() == 0 })
	settleGoroutines(t, before)

	// The server is still healthy and serving.
	resp2, err := http.Post(ts.URL+"/v1/query", "text/plain",
		strings.NewReader(`SELECT b.id FROM big b WHERE b.id = 1`))
	if err != nil {
		t.Fatal(err)
	}
	lines, err := countLines(resp2.Body)
	resp2.Body.Close()
	if err != nil || resp2.StatusCode != http.StatusOK || lines != 1 {
		t.Fatalf("follow-up query: status %d rows %d err %v", resp2.StatusCode, lines, err)
	}
}

// --- prepared statements -----------------------------------------------------

func TestStatementLifecycle(t *testing.T) {
	db := customerDB(t)
	_, ts := newTestServer(t, db, Config{})

	// Prepare.
	resp, err := http.Post(ts.URL+"/v1/statements", "application/json",
		strings.NewReader(`{"query":"SELECT c.name FROM customer c WHERE c.nationkey = :nation"}`))
	if err != nil {
		t.Fatal(err)
	}
	var st stmtJSON
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || st.Handle == "" {
		t.Fatalf("prepare: status %d, %+v", resp.StatusCode, st)
	}
	if len(st.Params) != 1 || st.Params[0] != "nation" {
		t.Fatalf("params = %v", st.Params)
	}

	// Execute twice with different bindings; counts must match in-process
	// execution.
	for _, nation := range []int{1, 2} {
		res, err := db.Query(`SELECT c.name FROM customer c WHERE c.nationkey = ?`, int64(nation))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/statements/"+st.Handle, "application/json",
			strings.NewReader(fmt.Sprintf(`{"params":{"nation":%d}}`, nation)))
		if err != nil {
			t.Fatal(err)
		}
		lines, err := countLines(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || lines != res.RowCount() {
			t.Fatalf("nation %d: status %d rows %d, want %d", nation, resp.StatusCode, lines, res.RowCount())
		}
	}

	// List shows the handle with its use count.
	resp, err = http.Get(ts.URL + "/v1/statements")
	if err != nil {
		t.Fatal(err)
	}
	var list []stmtJSON
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].Uses != 2 {
		t.Fatalf("list = %+v", list)
	}

	// Close; the handle is gone.
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/statements/"+st.Handle, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/statements/"+st.Handle, "application/json",
		strings.NewReader(`{"params":{"nation":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("closed handle status = %d, want 404", resp.StatusCode)
	}
}

// --- sources over the wire ---------------------------------------------------

func TestSourceRegistrationStaysLazy(t *testing.T) {
	db := cleandb.Open(cleandb.WithWorkers(2))
	_, ts := newTestServer(t, db, Config{})

	// Register an inline CSV payload; it must land pending, not parsed.
	resp, err := http.Post(ts.URL+"/v1/sources", "application/json",
		strings.NewReader(`{"name":"dict","format":"csv","data":"term,weight\nalpha,1\nbeta,2\n"}`))
	if err != nil {
		t.Fatal(err)
	}
	var info sourceJSON
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if info.Loaded {
		t.Fatalf("registration parsed the payload: %+v", info)
	}

	// First query loads it.
	resp, err = http.Post(ts.URL+"/v1/query", "text/plain", strings.NewReader(`SELECT d.term FROM dict d`))
	if err != nil {
		t.Fatal(err)
	}
	lines, err := countLines(resp.Body)
	resp.Body.Close()
	if err != nil || lines != 2 {
		t.Fatalf("rows = %d err = %v", lines, err)
	}
	resp, err = http.Get(ts.URL + "/v1/sources")
	if err != nil {
		t.Fatal(err)
	}
	var infos []sourceJSON
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || !infos[0].Loaded || infos[0].Rows != 2 {
		t.Fatalf("after query: %+v", infos)
	}

	// Bad requests are rejected.
	for _, body := range []string{
		`{"format":"csv","data":"a\n1\n"}`,             // no name
		`{"name":"x","data":"a\n1\n"}`,                 // no format
		`{"name":"x","format":"parquet","data":"..."}`, // unknown format
		`{"name":"x","path":"/nonexistent/file.csv"}`,  // missing file
	} {
		resp, err := http.Post(ts.URL+"/v1/sources", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400", body, resp.StatusCode)
		}
	}
}

// --- operability -------------------------------------------------------------

func TestMetricsEndpoint(t *testing.T) {
	db := customerDB(t)
	srv, ts := newTestServer(t, db, Config{})
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/query", "text/plain",
			strings.NewReader(`SELECT c.name FROM customer c`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`cleandb_queries_total{status="ok"} 3`,
		"cleandb_plan_cache_hits_total 2",
		"cleandb_plan_cache_misses_total 1",
		"cleandb_plan_cache_hit_rate 0.6666666666666666",
		"cleandb_queries_inflight 0",
		"cleandb_sources 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "cleandb_sim_ticks_total") {
		t.Fatalf("metrics missing engine counters:\n%s", text)
	}
	_ = srv
}

func TestHealthzAndDrain(t *testing.T) {
	db := customerDB(t)
	srv, ts := newTestServer(t, db, Config{})
	ref, err := db.Query(`SELECT c.name FROM customer c`)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	srv.BeginDrain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}
	// Draining refuses nothing in flight-wise: queries still execute.
	resp, err = http.Post(ts.URL+"/v1/query", "text/plain", strings.NewReader(`SELECT c.name FROM customer c`))
	if err != nil {
		t.Fatal(err)
	}
	lines, err := countLines(resp.Body)
	resp.Body.Close()
	if err != nil || lines != ref.RowCount() {
		t.Fatalf("query during drain: rows %d (want %d) err %v", lines, ref.RowCount(), err)
	}
}

func TestQueryErrorStatuses(t *testing.T) {
	db := customerDB(t)
	_, ts := newTestServer(t, db, Config{})
	cases := []struct {
		name, body string
		status     int
	}{
		{"parse error", `SELECT FROM FROM`, http.StatusBadRequest},
		{"unknown source", `SELECT x.a FROM nosuch x`, http.StatusBadRequest},
		{"missing binding", `SELECT c.name FROM customer c WHERE c.nationkey = :n`, http.StatusBadRequest},
		{"empty body", ``, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/query", "text/plain", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var apiErr apiError
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
			t.Fatalf("%s: error body not JSON: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
		if apiErr.Error == "" {
			t.Fatalf("%s: empty error message", tc.name)
		}
	}

	// A server-side deadline answers 504.
	g := newGate()
	db2 := cleandb.Open(cleandb.WithWorkers(2))
	db2.RegisterSource("gated", g)
	_, ts2 := newTestServer(t, db2, Config{QueryTimeout: 50 * time.Millisecond})
	resp, err := http.Post(ts2.URL+"/v1/query", "text/plain", strings.NewReader(`SELECT g.id FROM gated g`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timeout status = %d, want 504", resp.StatusCode)
	}
}

func TestStatementHandleCap(t *testing.T) {
	db := customerDB(t)
	_, ts := newTestServer(t, db, Config{MaxStatements: 2})
	prepare := func() (*http.Response, stmtJSON) {
		resp, err := http.Post(ts.URL+"/v1/statements", "application/json",
			strings.NewReader(`{"query":"SELECT c.name FROM customer c"}`))
		if err != nil {
			t.Fatal(err)
		}
		var st stmtJSON
		_ = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		return resp, st
	}
	var first stmtJSON
	for i := 0; i < 2; i++ {
		resp, st := prepare()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("prepare %d: status = %d", i, resp.StatusCode)
		}
		if i == 0 {
			first = st
		}
	}
	// The cap rejects further prepares instead of growing without bound.
	resp, _ := prepare()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap prepare status = %d, want 429", resp.StatusCode)
	}
	// Closing a handle frees a slot.
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/statements/"+first.Handle, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	resp, _ = prepare()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-delete prepare status = %d, want 201", resp.StatusCode)
	}
}

func TestTextWildcardAcceptServesCSV(t *testing.T) {
	// text/* must answer with the one text type served (text/csv), never
	// application/x-ndjson outside the client's Accept range.
	_, ts := newTestServer(t, customerDB(t), Config{})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/query",
		strings.NewReader(`SELECT c.name FROM customer c WHERE c.nationkey = 1`))
	req.Header.Set("Accept", "text/*")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != formatCSV {
		t.Fatalf("Content-Type = %q, want %q", ct, formatCSV)
	}
}

func TestOversizedQueryBodyRejected(t *testing.T) {
	// A text body past the 1 MiB cap must be rejected, not silently
	// truncated into a different statement.
	_, ts := newTestServer(t, customerDB(t), Config{})
	big := `SELECT c.name FROM customer c WHERE c.address = '` +
		strings.Repeat("x", maxQueryBody+1024) + `'`
	resp, err := http.Post(ts.URL+"/v1/query", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body status = %d, want 400", resp.StatusCode)
	}
}
