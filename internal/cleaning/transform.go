package cleaning

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"cleandb/internal/engine"
	"cleandb/internal/types"
)

// Transformations are the paper's lightweight syntactic repairs (§8.2,
// Table 4): splitting a date attribute into components, and filling missing
// values with the column average. CleanDB's optimizer applies several
// transformations in a single dataset pass; the SeparatePasses variants
// traverse once per operation, which is what a baseline that treats each
// operation as a standalone task must do.

// SplitDate splits the named "YYYY-MM-DD" column into year/month/day fields
// appended to each record.
func SplitDate(ds *engine.Dataset, col string) *engine.Dataset {
	cached := extendedSchema(ds, col+"_year", col+"_month", col+"_day")
	return ds.Map("split:"+col, func(v types.Value) types.Value {
		rec := v.Record()
		if rec == nil {
			return v
		}
		y, m, d := splitDateStr(v.Field(col).Str())
		fields := append(append(make([]types.Value, 0, len(rec.Fields)+3), rec.Fields...), y, m, d)
		return types.NewRecord(cached, fields)
	})
}

// extendedSchema derives the schema of the first record extended with extra
// columns. All records of a generated dataset share one schema, so computing
// it once up front keeps the per-record map race-free and cheap.
func extendedSchema(ds *engine.Dataset, extra ...string) *types.Schema {
	//lint:ignore ctxcancel early-exit probe: returns at the first record found
	for i := 0; i < ds.NumPartitions(); i++ {
		for _, v := range ds.Partition(i) {
			if rec := v.Record(); rec != nil {
				return rec.Schema.Extend(extra...)
			}
		}
	}
	return types.NewSchema(extra...)
}

func splitDateStr(s string) (y, m, d types.Value) {
	parts := strings.SplitN(s, "-", 3)
	conv := func(i int) types.Value {
		if i >= len(parts) {
			return types.Null()
		}
		n, err := strconv.Atoi(parts[i])
		if err != nil {
			return types.Null()
		}
		return types.Int(int64(n))
	}
	return conv(0), conv(1), conv(2)
}

// ColumnAverage computes the mean of the named numeric column, ignoring
// nulls, with a local-partial then merge plan (a primitive-monoid reduce).
func ColumnAverage(ds *engine.Dataset, col string) float64 {
	partialSchema := types.NewSchema("sum", "count")
	partials := ds.MapPartitions("avg:"+col, func(_ int, part []types.Value) []types.Value {
		var sum float64
		var count int64
		for _, v := range part {
			f := v.Field(col)
			if f.IsNull() {
				continue
			}
			sum += f.Float()
			count++
		}
		return []types.Value{types.NewRecord(partialSchema, []types.Value{types.Float(sum), types.Int(count)})}
	})
	var sum float64
	var count int64
	for _, p := range partials.Collect() {
		sum += p.Field("sum").Float()
		count += p.Field("count").Int()
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// FillMissing replaces nulls in the named column with the given value. Like
// the paper's transformation queries, it projects the full tuple (the output
// is a new dataset, not a view), so its cost is comparable to a plain
// full-projection query plus the average computation.
func FillMissing(ds *engine.Dataset, col string, fill types.Value) *engine.Dataset {
	return ds.Map("fill:"+col, func(v types.Value) types.Value {
		rec := v.Record()
		if rec == nil {
			return v
		}
		fields := append([]types.Value(nil), rec.Fields...)
		if idx, ok := rec.Schema.Index(col); ok && fields[idx].IsNull() {
			fields[idx] = fill
		}
		return types.NewRecord(rec.Schema, fields)
	})
}

// SplitAndFillOnePass applies both transformations in a single dataset
// traversal — the fused plan CleanDB's optimizer produces for the combined
// CleanM query (paper Table 4, "one step"). The average is computed first
// (it is needed before any fill), then one map performs both repairs.
func SplitAndFillOnePass(ds *engine.Dataset, dateCol, fillCol string) *engine.Dataset {
	avg := types.Float(ColumnAverage(ds, fillCol))
	cached := extendedSchema(ds, dateCol+"_year", dateCol+"_month", dateCol+"_day")
	return ds.Map("splitfill", func(v types.Value) types.Value {
		rec := v.Record()
		if rec == nil {
			return v
		}
		fields := append(make([]types.Value, 0, len(rec.Fields)+3), rec.Fields...)
		if idx, ok := rec.Schema.Index(fillCol); ok && fields[idx].IsNull() {
			fields[idx] = avg
		}
		y, m, d := splitDateStr(v.Field(dateCol).Str())
		fields = append(fields, y, m, d)
		return types.NewRecord(cached, fields)
	})
}

// SplitAndFillTwoPasses applies the transformations as two standalone tasks,
// each traversing the dataset (paper Table 4, "two steps").
func SplitAndFillTwoPasses(ds *engine.Dataset, dateCol, fillCol string) *engine.Dataset {
	out := SplitDate(ds, dateCol)
	avg := types.Float(ColumnAverage(out, fillCol))
	return FillMissing(out, fillCol, avg)
}

// ProjectAll is the plain query baseline of Table 4: a full traversal that
// projects every attribute.
func ProjectAll(ds *engine.Dataset) *engine.Dataset {
	return ds.Map("projectall", func(v types.Value) types.Value {
		rec := v.Record()
		if rec == nil {
			return v
		}
		fields := append([]types.Value(nil), rec.Fields...)
		return types.NewRecord(rec.Schema, fields)
	})
}

// SemanticTransform maps values of a column through an auxiliary mapping
// table (paper §4.4, e.g. airport → city), reporting both the transformed
// dataset and the values with no mapping.
func SemanticTransform(ds *engine.Dataset, col string, mapping map[string]string) (out *engine.Dataset, unmapped []string) {
	var mu sync.Mutex
	missing := map[string]struct{}{}
	out = ds.Map("semantic:"+col, func(v types.Value) types.Value {
		rec := v.Record()
		if rec == nil {
			return v
		}
		idx, ok := rec.Schema.Index(col)
		if !ok {
			return v
		}
		val := rec.Fields[idx].Str()
		repl, ok := mapping[val]
		if !ok {
			mu.Lock()
			missing[val] = struct{}{}
			mu.Unlock()
			return v
		}
		fields := append([]types.Value(nil), rec.Fields...)
		fields[idx] = types.String(repl)
		return types.NewRecord(rec.Schema, fields)
	})
	for v := range missing {
		unmapped = append(unmapped, v)
	}
	sort.Strings(unmapped)
	return out, unmapped
}
