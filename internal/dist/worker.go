package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"cleandb"
	"cleandb/internal/data"
	"cleandb/internal/engine"
)

// Worker executes query fragments against its own DB. Under the SPMD model a
// fragment is the whole query: the worker runs the full pipeline over the
// replicated catalog and contributes its placement-assigned slots at every
// masked stage through the coordinator's exchange.
type Worker struct {
	db          *cleandb.DB
	fingerprint string
	client      *http.Client

	mu sync.Mutex
	// shipped remembers which path each coordinator-shipped source was
	// registered from, so repeated fragments skip re-registration and a
	// changed path re-registers.
	shipped map[string]string
}

// NewWorker wraps a DB for fragment execution. The DB must be configured
// identically to the coordinator's (same Open options); ConfigFingerprint
// enforces this at registration and on every fragment.
func NewWorker(db *cleandb.DB) *Worker {
	return &Worker{
		db:          db,
		fingerprint: db.ConfigFingerprint(),
		client:      &http.Client{}, // long-poll exchanges: no client timeout, contexts govern
		shipped:     make(map[string]string),
	}
}

// Fingerprint returns the wrapped DB's configuration fingerprint.
func (wk *Worker) Fingerprint() string { return wk.fingerprint }

// HandleFragment is the POST /v1/cluster/fragment endpoint: decode the
// fragment, sync shipped sources into the catalog, execute the query with a
// remote exchange seat, and report rows plus cost counters.
func (wk *Worker) HandleFragment(w http.ResponseWriter, r *http.Request) {
	var req fragmentRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "dist: bad fragment request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Fingerprint != wk.fingerprint {
		http.Error(w, fmt.Sprintf("dist: fingerprint mismatch: coordinator %q, worker %q",
			req.Fingerprint, wk.fingerprint), http.StatusConflict)
		return
	}
	if req.Session == "" || req.Self == "" || len(req.Members) < 2 || req.ExchangeURL == "" {
		http.Error(w, "dist: incomplete fragment request", http.StatusBadRequest)
		return
	}
	custody := req.Custody == CustodyPartitioned
	stamp := ""
	if custody {
		stamp = req.CustodyStamp
	}
	if err := wk.syncSources(req.Sources, stamp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	ctx := r.Context()
	if req.TimeoutMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
		defer cancel()
	}
	ex := &remoteExchange{
		client:  wk.client,
		url:     req.ExchangeURL,
		session: req.Session,
		self:    req.Self,
		members: req.Members,
		ctx:     ctx,
		dict:    data.NewDict(),
		custody: custody,
	}

	var resp fragmentResponse
	res, err := wk.db.QueryContext(engine.WithExchange(ctx, ex), req.Query, namedArgs(req.Params)...)
	resp.ExecSlots = ex.execSlots.Load()
	resp.CustodyRescans = ex.custodyRescans.Load()
	for _, si := range wk.db.SourceInfos() {
		resp.OwnedPartitions += int64(si.OwnedPartitions)
		resp.OwnedBytes += si.OwnedBytes
	}
	if err != nil {
		resp.Err = err.Error()
	} else {
		m := res.Metrics()
		resp.Rows = int64(res.RowCount())
		resp.SimTicks = m.SimTicks
		resp.Comparisons = m.Comparisons
		resp.ShuffledRecords = m.ShuffledRecords
		resp.ShuffledBytes = m.ShuffledBytes
		for _, rs := range res.Repairs() {
			resp.Repairs++
			resp.RepairsChanged += rs.Changed
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(&resp); err != nil {
		// Response already committed; nothing useful left to do.
		return
	}
}

// syncSources registers the coordinator-shipped file-backed sources this
// worker has not seen yet (or whose backing path or epoch moved). Sources the
// worker already registered itself under the same name are left alone only
// when they came from the same path at the same version; a conflicting local
// registration is replaced, since the coordinator's catalog is authoritative
// for cluster queries. The version in the key is what keeps a replicated
// catalog fresh across appends: when the coordinator's delta epoch moves, the
// re-registration here drops the worker's stale load and the next scan reads
// the grown file.
//
// In partitioned custody mode the key also carries the session's custody
// stamp, so a membership or cohort change drops the previous division's warm
// load and the next scan re-divides — on this worker at the same moment the
// coordinator's own resync does it, keeping every member's cold/warm state in
// lockstep. Replicated mode passes an empty stamp and keeps the plain key.
func (wk *Worker) syncSources(specs []sourceSpec, stamp string) error {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	for _, s := range specs {
		if s.Path == "" {
			continue
		}
		key := s.Path + "#" + s.Version
		if stamp != "" {
			key += "|" + stamp
		}
		if wk.shipped[s.Name] == key {
			continue
		}
		if err := wk.db.RegisterFile(s.Name, s.Path); err != nil {
			return fmt.Errorf("dist: ship source %q from %q: %w", s.Name, s.Path, err)
		}
		wk.shipped[s.Name] = key
	}
	return nil
}
