package cleandb

import "testing"

func TestPlanCachePutAfterPurgeDropped(t *testing.T) {
	c := newPlanCache[int](4)
	gen := c.generation()
	c.purge() // a catalog change lands while "planning" is in flight
	c.put("k", 1, gen)
	if _, ok := c.get("k"); ok {
		t.Fatal("stale-generation put must be dropped")
	}
	// A put from the current generation goes through.
	c.put("k", 2, c.generation())
	if v, ok := c.get("k"); !ok || v != 2 {
		t.Fatalf("current-generation put lost: %v %v", v, ok)
	}
}

func TestPlanCacheNilSafe(t *testing.T) {
	var c *planCache[int]
	c.put("k", 1, c.generation())
	c.purge()
	if _, ok := c.get("k"); ok {
		t.Fatal("nil cache should never hit")
	}
	if s := c.stats(); s != (CacheStats{}) {
		t.Fatalf("stats = %+v", s)
	}
}

func TestNormalizeQueryPreservesLiterals(t *testing.T) {
	cases := [][2]string{
		{"SELECT  a\n FROM t", "SELECT a FROM t"},
		{"WHERE x = 'a  b'", "WHERE x = 'a  b'"},
		{`WHERE x = "a	b" AND  y = 1`, `WHERE x = "a	b" AND y = 1`},
		{"  leading and trailing  ", "leading and trailing"},
	}
	for _, tc := range cases {
		if got := normalizeQuery(tc[0]); got != tc[1] {
			t.Errorf("normalizeQuery(%q) = %q, want %q", tc[0], got, tc[1])
		}
	}
}
