package dist

import (
	"math"

	"cleandb"
)

// proto.go defines the JSON control-plane messages between coordinator and
// workers. The data plane (slot frames through the exchange) is binary; see
// wirebody.go.

// registerRequest is a worker announcing itself to the coordinator.
type registerRequest struct {
	// URL is the worker's advertised base URL; the coordinator POSTs
	// fragments to URL+"/v1/cluster/fragment" and probes URL+"/healthz".
	URL string `json:"url"`
	// Fingerprint is the worker DB's ConfigFingerprint; registration is
	// refused on mismatch, because SPMD replay requires identical planning.
	Fingerprint string `json:"fingerprint"`
}

type registerResponse struct {
	// ID is the member id the coordinator assigned ("w0001", ...); stable
	// across re-registration from the same URL.
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
}

// sourceSpec ships one catalog entry by path. Only file-backed sources are
// shippable; in-memory sources stay coordinator-local, and a worker fragment
// that needs one fails over to the coordinator via slot reassignment.
type sourceSpec struct {
	Name   string `json:"name"`
	Path   string `json:"path"`
	Format string `json:"format"`
	// Version fingerprints the coordinator's loaded incremental state of the
	// entry (base generation + delta epoch). A worker that already holds the
	// path re-registers when it changes, so a file grown or rewritten since
	// the last fragment is re-scanned instead of served from the stale load —
	// a replicated catalog is only consistent if every member reads the same
	// epoch.
	Version string `json:"version,omitempty"`
}

// fragmentRequest asks a worker to execute its share of one query.
type fragmentRequest struct {
	Session string `json:"session"`
	// Self is this worker's member id; Members the session membership with
	// the coordinator first — the inputs every node feeds placement.
	Self    string   `json:"self"`
	Members []string `json:"members"`
	// ExchangeURL is the coordinator's exchange endpoint for this session.
	ExchangeURL string `json:"exchange_url"`
	// Fingerprint must match the worker's DB configuration.
	Fingerprint string         `json:"fingerprint"`
	Query       string         `json:"query"`
	Params      map[string]any `json:"params,omitempty"`
	// TimeoutMs bounds the fragment wall clock when positive.
	TimeoutMs int64        `json:"timeout_ms,omitempty"`
	Sources   []sourceSpec `json:"sources"`
	// Custody is the session's custody mode ("partitioned" or "replicated");
	// empty means replicated, which is the pre-custody wire behavior.
	Custody string `json:"custody,omitempty"`
	// CustodyStamp fingerprints the custody division (mode + registration
	// cohort + membership). Workers fold it into their shipped-source keys in
	// partitioned mode, so a stamp change re-registers the source and the next
	// scan re-divides under the current membership on every member at once —
	// cold and warm members never disagree about whether a scan stage runs.
	CustodyStamp string `json:"custody_stamp,omitempty"`
}

// fragmentResponse reports the fragment outcome. Under SPMD the worker's
// counters are its local view of the shared query (identical SimTicks, local
// share of Comparisons); the coordinator merges them into trailer metrics.
type fragmentResponse struct {
	Err             string `json:"err,omitempty"`
	Rows            int64  `json:"rows"`
	SimTicks        int64  `json:"sim_ticks"`
	Comparisons     int64  `json:"comparisons"`
	ShuffledRecords int64  `json:"shuffled_records"`
	ShuffledBytes   int64  `json:"shuffled_bytes"`
	// Repairs counts REPAIR clauses executed; RepairsChanged the values they
	// rewrote — equal on every live node when the run is consistent.
	Repairs        int64 `json:"repairs"`
	RepairsChanged int64 `json:"repairs_changed"`
	// ExecSlots counts the masked join slots this node actually executed:
	// its placement share plus any slots reassigned to it. Unlike the
	// simulated counters above, this one measures real work division.
	ExecSlots int64 `json:"exec_slots"`
	// CustodyRescans counts scan chunks this worker adopted from a dead peer
	// and re-parsed during the fragment. OwnedPartitions and OwnedBytes are
	// the worker's loaded custody share across the catalog — equal to the
	// totals under replicated custody, roughly 1/N of them under partitioned.
	CustodyRescans  int64 `json:"custody_rescans,omitempty"`
	OwnedPartitions int64 `json:"owned_partitions,omitempty"`
	OwnedBytes      int64 `json:"owned_bytes,omitempty"`
}

// namedArgs converts a JSON params map to cleandb named arguments, mirroring
// the server's queryRequest conversion exactly: whole floats within the
// contiguous-integer range become int64, so a fragment binds the same typed
// values the coordinator bound.
func namedArgs(params map[string]any) []any {
	if len(params) == 0 {
		return nil
	}
	out := make([]any, 0, len(params))
	for k, v := range params {
		if f, ok := v.(float64); ok && f == math.Trunc(f) && math.Abs(f) < (1<<53) {
			v = int64(f)
		}
		out = append(out, cleandb.Named(k, v))
	}
	return out
}
