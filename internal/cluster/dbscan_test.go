package cluster

import (
	"testing"

	"cleandb/internal/textsim"
	"cleandb/internal/types"
)

func TestDBSCANSeparatesClusters(t *testing.T) {
	d := &DBSCAN{Eps: 0.3, MinPts: 2, Metric: textsim.MetricLevenshtein}
	d.Fit([]string{
		"aaaaaa", "aaaaab", "aaaabb", // dense cluster A
		"zzzzzz", "zzzzzy", "zzzyyz", // dense cluster B
		"qqkxjw", // noise
	})
	if d.Clusters() != 2 {
		t.Fatalf("clusters = %d, want 2", d.Clusters())
	}
	ka := d.Keys("aaaaax")
	kb := d.Keys("zzzzzx")
	if len(ka) != 1 || len(kb) != 1 || ka[0] == kb[0] {
		t.Fatalf("a* and z* should land in different clusters: %v vs %v", ka, kb)
	}
	kn := d.Keys("mmpprr")
	if kn[0] == ka[0] || kn[0] == kb[0] {
		t.Log("far value assigned to noise group as expected:", kn)
	}
}

func TestDBSCANNoiseGetsOwnGroup(t *testing.T) {
	d := &DBSCAN{Eps: 0.2, MinPts: 3, Metric: textsim.MetricLevenshtein}
	d.Fit([]string{"abc", "xyz"}) // nothing dense enough
	if d.Clusters() != 0 {
		t.Fatalf("clusters = %d, want 0", d.Clusters())
	}
	k := d.Keys("abc")
	if len(k) != 1 || k[0] != "noise:abc" {
		t.Fatalf("noise key = %v", k)
	}
}

func TestDBSCANBorderPointsJoinClusters(t *testing.T) {
	// A chain: a-b close, b-c close, a-c farther; with MinPts=2 all three
	// become density-connected.
	d := &DBSCAN{Eps: 0.35, MinPts: 2, Metric: textsim.MetricLevenshtein}
	d.Fit([]string{"aaaaaa", "aaaaab", "aaaabc"})
	if d.Clusters() != 1 {
		t.Fatalf("chain should form one cluster, got %d", d.Clusters())
	}
}

func TestDBSCANAsBlockerInGroupsMonoid(t *testing.T) {
	d := &DBSCAN{Eps: 0.3, MinPts: 2, Metric: textsim.MetricLevenshtein}
	words := []string{"stella", "stela", "stellaa", "manos", "manoss", "manoz"}
	d.Fit(words)
	m := GroupsMonoid{B: d}
	acc := m.Zero()
	for _, w := range words {
		acc = m.Merge(acc, m.Unit(types.String(w)))
	}
	if len(acc.List()) < 2 {
		t.Fatalf("expected at least two groups: %s", acc)
	}
	// KeyCost reflects core-point distance computations.
	if d.KeyCost("x") <= 0 {
		t.Fatal("fit DBSCAN should report positive key cost")
	}
}
