package engine

import (
	"sort"

	"cleandb/internal/types"
)

// Map applies f to every record, producing a new dataset with the same
// partitioning. This is a narrow (shuffle-free) operator.
func (d *Dataset) Map(name string, f func(types.Value) types.Value) *Dataset {
	parts := d.rows()
	out := make([][]types.Value, len(parts))
	costs := make([]int64, len(parts))
	d.ctx.runParallel(len(parts), func(i int) {
		in := parts[i]
		res := make([]types.Value, len(in))
		for j, v := range in {
			res[j] = f(v)
		}
		out[i] = res
		costs[i] = int64(len(in))
	})
	d.finishNarrow(name, costs)
	return &Dataset{ctx: d.ctx, parts: out}
}

// Filter keeps the records for which pred returns true.
func (d *Dataset) Filter(name string, pred func(types.Value) bool) *Dataset {
	parts := d.rows()
	out := make([][]types.Value, len(parts))
	costs := make([]int64, len(parts))
	d.ctx.runParallel(len(parts), func(i int) {
		in := parts[i]
		res := make([]types.Value, 0, len(in)/2)
		for _, v := range in {
			if pred(v) {
				res = append(res, v)
			}
		}
		out[i] = res
		costs[i] = int64(len(in))
	})
	d.finishNarrow(name, costs)
	return &Dataset{ctx: d.ctx, parts: out}
}

// FlatMap applies f to every record and concatenates the results. It is how
// the physical level implements the Unnest operator (paper Table 2).
func (d *Dataset) FlatMap(name string, f func(types.Value) []types.Value) *Dataset {
	parts := d.rows()
	out := make([][]types.Value, len(parts))
	costs := make([]int64, len(parts))
	d.ctx.runParallel(len(parts), func(i int) {
		in := parts[i]
		var res []types.Value
		for _, v := range in {
			res = append(res, f(v)...)
		}
		out[i] = res
		costs[i] = int64(len(in)) + int64(len(res))/4
	})
	d.finishNarrow(name, costs)
	return &Dataset{ctx: d.ctx, parts: out}
}

// FlatMapW is FlatMap with an explicit per-record cost model: the stage's
// worker cost is the sum of weight(v) over the partition's records. Pairwise
// comparison stages (dedup within blocks) use it so that a worker holding a
// popular block is correctly modeled as the straggler.
func (d *Dataset) FlatMapW(name string, f func(types.Value) []types.Value, weight func(types.Value) int64) *Dataset {
	parts := d.rows()
	out := make([][]types.Value, len(parts))
	costs := make([]int64, len(parts))
	d.ctx.runParallel(len(parts), func(i int) {
		in := parts[i]
		var res []types.Value
		var cost int64
		for _, v := range in {
			res = append(res, f(v)...)
			cost += weight(v)
		}
		out[i] = res
		costs[i] = cost
	})
	d.finishNarrow(name, costs)
	return &Dataset{ctx: d.ctx, parts: out}
}

// MapPartitions applies f to each whole partition. The paper's Nest operator
// lowers to aggregateByKey followed by mapPartitions (Table 2).
func (d *Dataset) MapPartitions(name string, f func(int, []types.Value) []types.Value) *Dataset {
	parts := d.rows()
	out := make([][]types.Value, len(parts))
	costs := make([]int64, len(parts))
	d.ctx.runParallel(len(parts), func(i int) {
		out[i] = f(i, parts[i])
		costs[i] = int64(len(parts[i]))
	})
	d.finishNarrow(name, costs)
	return &Dataset{ctx: d.ctx, parts: out}
}

// Union appends other's partitions to d's (no shuffle).
func (d *Dataset) Union(other *Dataset) *Dataset {
	dp, op := d.rows(), other.rows()
	parts := make([][]types.Value, 0, len(dp)+len(op))
	parts = append(parts, dp...)
	parts = append(parts, op...)
	return &Dataset{ctx: d.ctx, parts: parts}
}

// Repartition redistributes records into n contiguous chunks, modeling an
// explicit exchange: all records count as shuffled.
func (d *Dataset) Repartition(n int) *Dataset {
	if d.parts == nil && d.batches != nil {
		if out := d.repartitionBatches(n); out != nil {
			return out
		}
	}
	all := d.Collect()
	var bytes int64
	for _, v := range all {
		bytes += int64(types.SizeBytes(v))
	}
	d.ctx.metrics.logStage(StageStats{
		Name:            "repartition",
		WorkerCosts:     partitionCosts(d),
		ShuffledRecords: int64(len(all)),
		ShuffledBytes:   bytes,
	})
	return FromValuesN(d.ctx, all, n)
}

// SortBy globally sorts the dataset with the given less function. Used by
// tests and by the Spark SQL baseline's sort-based operators.
func (d *Dataset) SortBy(name string, less func(a, b types.Value) bool) *Dataset {
	all := d.Collect()
	sort.SliceStable(all, func(i, j int) bool { return less(all[i], all[j]) })
	n := int64(len(all))
	cost := n
	if n > 1 {
		cost = n * int64(bitLen(n))
	}
	d.ctx.metrics.logStage(StageStats{
		Name:            name,
		WorkerCosts:     []int64{cost},
		ShuffledRecords: n,
	})
	return FromValuesN(d.ctx, all, d.ctx.Workers)
}

// Sample returns every k-th record (k>=1), used to build statistics.
func (d *Dataset) Sample(k int) []types.Value {
	if k < 1 {
		k = 1
	}
	var out []types.Value
	i := 0
	for _, p := range d.rows() {
		if d.ctx.Err() != nil {
			break // partial sample: the cancelled query never uses it
		}
		for _, v := range p {
			if i%k == 0 {
				out = append(out, v)
			}
			i++
		}
	}
	return out
}

func (d *Dataset) finishNarrow(name string, costs []int64) {
	var total int64
	for _, c := range costs {
		total += c
	}
	d.ctx.metrics.recordsProcessed.Add(total)
	d.ctx.metrics.logStage(StageStats{Name: name, WorkerCosts: costs})
}

func partitionCosts(d *Dataset) []int64 {
	parts := d.rows()
	costs := make([]int64, len(parts))
	for i, p := range parts {
		costs[i] = int64(len(p))
	}
	return costs
}

func bitLen(n int64) int {
	b := 0
	for n > 0 {
		n >>= 1
		b++
	}
	return b
}
