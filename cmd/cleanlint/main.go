// Command cleanlint runs the cleandb static-analysis suite: the five
// analyzers in internal/lint that enforce the engine's cost-model,
// cancellation, dictionary, sink-lifecycle and lock-snapshot invariants.
//
// Usage:
//
//	cleanlint [-list] [packages]
//
// With package patterns (default "./..."), cleanlint loads and type-checks
// the matching packages and prints one line per finding:
//
//	path/file.go:12:3: [ctxcancel] nested loop ... has no reachable cancellation check
//
// The exit status is 1 when any diagnostic survives //lint:ignore
// suppression, 0 otherwise.
//
// cleanlint also speaks the `go vet -vettool` protocol (the -V=full version
// handshake and the *.cfg unit-check invocation), so `go vet
// -vettool=$(which cleanlint) ./...` works too; in that mode diagnostics go
// to stderr and the exit status is 2, matching vet's convention.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"cleandb/internal/lint"
	"cleandb/internal/lint/load"
)

func main() {
	// go vet probes its vettool with -V=full (version fingerprint, which
	// must carry a buildID the go command can cache against) and -flags
	// (JSON list of tool flags) before any unit check.
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		id := "unknown"
		if exe, err := os.ReadFile(os.Args[0]); err == nil {
			sum := sha256.Sum256(exe)
			id = fmt.Sprintf("%x", sum[:16])
		}
		fmt.Printf("cleanlint version devel buildID=%s\n", id)
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(vetUnit(os.Args[1]))
	}

	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: cleanlint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers {
			summary, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-14s %s\n", a.Name, summary)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.CheckPatterns("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cleanlint: %v\n", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// vetConfig is the subset of the vet unit-check config cleanlint consumes.
type vetConfig struct {
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string
}

// vetUnit performs one unit check for `go vet -vettool`: type-check the
// files named in the config against the export data vet already resolved,
// run the suite, and report to stderr. Returns the process exit status.
func vetUnit(cfgPath string) int {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cleanlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cleanlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The facts file must exist even though cleanlint exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "cleanlint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Flatten vet's two-level map (source import string -> canonical path ->
	// export file) into the loader's one-level lookup.
	exports := make(map[string]string, len(cfg.ImportMap))
	for src, canonical := range cfg.ImportMap {
		if f, ok := cfg.PackageFile[canonical]; ok {
			exports[src] = f
		}
	}
	pkg, err := load.CheckFiles(cfg.ImportPath, "", cfg.GoFiles, exports)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cleanlint: %v\n", err)
		return 1
	}
	diags, err := lint.Check([]*load.Package{pkg})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cleanlint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Position, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
