// Package dictfixture exercises the dictcode analyzer against the real
// data.Dict interner.
package dictfixture

import "cleandb/internal/data"

// unhoistedCode interns a constant on every iteration: flagged — Code takes
// the interner write lock on a miss and belongs before the loop.
func unhoistedCode(d *data.Dict, codes []uint32) int {
	n := 0
	for _, c := range codes {
		if c == d.Code("active") { // want `loop-invariant receiver and arguments`
			n++
		}
	}
	return n
}

// hoistedCode is the blessed shape: intern once, compare codes in the loop.
func hoistedCode(d *data.Dict, codes []uint32) int {
	want := d.Code("active")
	n := 0
	for _, c := range codes {
		if c == want {
			n++
		}
	}
	return n
}

// variantLookup resolves the row's own value — nothing to hoist.
func variantLookup(d *data.Dict, rows []string) int {
	n := 0
	for _, r := range rows {
		if _, ok := d.Lookup(r); ok {
			n++
		}
	}
	return n
}

// crossDictCompare compares codes minted by two dictionaries: flagged —
// equal codes do not mean equal strings across interners.
func crossDictCompare(left, right *data.Dict, a, b string) bool {
	return left.Code(a) == right.Code(b) // want `distinct dictionaries`
}

// crossDictVars is the same bug with the codes parked in locals: flagged.
func crossDictVars(left, right *data.Dict, a, b string) bool {
	ca := left.Code(a)
	cb := right.Code(b)
	return ca == cb // want `distinct dictionaries`
}

// sameDict codes from one dictionary are comparable.
func sameDict(d *data.Dict, a, b string) bool {
	ca := d.Code(a)
	cb := d.Code(b)
	return ca == cb
}
