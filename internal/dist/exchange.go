package dist

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"

	"cleandb/internal/data"
	"cleandb/internal/types"
)

// exchange.go holds the two engine.Exchange implementations: the
// coordinator's in-process seat at the barrier hub, and the worker's seat,
// which long-polls the coordinator's exchange endpoint over HTTP.

// encodeLocal encodes each computed slot's rows into a wire frame.
func encodeLocal(local map[int][]types.Value) map[int][]byte {
	frames := make(map[int][]byte, len(local))
	for slot, rows := range local {
		frames[slot] = data.EncodeRowsFrame(rows)
	}
	return frames
}

// decodeFull turns the barrier's full frame vector back into row slices,
// reusing the rows this node computed itself and decoding only the peers'
// frames — into this node's session dictionary, so string codes stay
// consistent with everything else the node has interned.
func decodeFull(frames [][]byte, local map[int][]types.Value, dict *data.Dict) ([][]types.Value, error) {
	out := make([][]types.Value, len(frames))
	for i, frame := range frames {
		if rows, ok := local[i]; ok {
			out[i] = rows
			continue
		}
		rows, err := data.DecodeRowsFrame(frame, dict)
		if err != nil {
			return nil, fmt.Errorf("dist: exchange slot %d: %w", i, err)
		}
		out[i] = rows
	}
	return out, nil
}

// localExchange is the coordinator's seat at the barrier of one session.
type localExchange struct {
	s    *hubSession
	ctx  context.Context // the coordinator's own query context
	dict *data.Dict
	// execSlots counts the masked slots this node actually executed —
	// placement share plus reassigned extras. It is the real (not simulated)
	// measure of how the join work divided across the cluster.
	execSlots atomic.Int64
}

func newLocalExchange(s *hubSession, ctx context.Context) *localExchange {
	return &localExchange{s: s, ctx: ctx, dict: data.NewDict()}
}

func (x *localExchange) Mask(stage string, n int) []int {
	return ownedSlots(stage, n, x.s.members[0], x.s.members)
}

func (x *localExchange) Gather(stage string, n int, local map[int][]types.Value) ([][]types.Value, []int, error) {
	x.execSlots.Add(int64(len(local)))
	full, extra, err := x.s.gather(x.ctx, x.s.members[0], stage, n, encodeLocal(local))
	if err != nil || len(extra) > 0 {
		return nil, extra, err
	}
	rows, err := decodeFull(full, local, x.dict)
	return rows, nil, err
}

// remoteExchange is a worker's seat: every gather is a long-poll POST of the
// worker's slot frames to the coordinator, answered once the stage resolves.
type remoteExchange struct {
	client  *http.Client
	url     string // coordinator exchange endpoint
	session string
	self    string
	members []string
	ctx     context.Context // the fragment request's context
	dict    *data.Dict
	// execSlots mirrors localExchange's counter for this worker's share.
	execSlots atomic.Int64
}

func (x *remoteExchange) Mask(stage string, n int) []int {
	return ownedSlots(stage, n, x.self, x.members)
}

func (x *remoteExchange) Gather(stage string, n int, local map[int][]types.Value) ([][]types.Value, []int, error) {
	x.execSlots.Add(int64(len(local)))
	body, err := encodeExchangeRequest(
		exchangeHeader{Session: x.session, Self: x.self, Stage: stage, N: n},
		encodeLocal(local))
	if err != nil {
		return nil, nil, err
	}
	reply, err := x.post(body)
	if err != nil {
		return nil, nil, err
	}
	rep, frames, err := decodeExchangeReply(reply)
	if err != nil {
		return nil, nil, err
	}
	switch rep.Status {
	case "extra":
		return nil, rep.Extra, nil
	case "full":
		if len(frames) != n {
			return nil, nil, fmt.Errorf("dist: exchange reply carries %d frames, want %d", len(frames), n)
		}
		rows, err := decodeFull(frames, local, x.dict)
		return rows, nil, err
	default:
		return nil, nil, fmt.Errorf("dist: exchange reply status %q", rep.Status)
	}
}

// post sends one gather long-poll, retrying once on a transport error. Any
// HTTP response — success or error status — is authoritative (the barrier is
// idempotent for resubmitted frames, so a retried submit is safe); only a
// dropped connection warrants the second attempt.
func (x *remoteExchange) post(body []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if err := x.ctx.Err(); err != nil {
			return nil, err
		}
		req, err := http.NewRequestWithContext(x.ctx, http.MethodPost, x.url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := x.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		reply, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("dist: exchange rejected: %s: %s", resp.Status, strings.TrimSpace(string(reply)))
		}
		return reply, nil
	}
	return nil, fmt.Errorf("dist: exchange transport failed after retry: %w", lastErr)
}
