package data

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"cleandb/internal/types"
)

// ReadJSON parses JSON-lines input (one object per line) into record values.
// Nested objects become nested records, arrays become lists; numbers parse
// as ints when integral, floats otherwise. Field order is canonical
// (sorted), so records with equal keys share a schema.
func ReadJSON(r io.Reader) ([]types.Value, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	var out []types.Value
	schemas := map[string]*types.Schema{}
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var v interface{}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.UseNumber()
		if err := dec.Decode(&v); err != nil {
			return nil, fmt.Errorf("data: json line %d: %w", line, err)
		}
		out = append(out, fromJSON(v, schemas))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("data: json: %w", err)
	}
	return out, nil
}

func fromJSON(v interface{}, schemas map[string]*types.Schema) types.Value {
	switch x := v.(type) {
	case nil:
		return types.Null()
	case bool:
		return types.Bool(x)
	case string:
		return types.String(x)
	case json.Number:
		if i, err := x.Int64(); err == nil {
			return types.Int(i)
		}
		f, err := x.Float64()
		if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
			return types.String(x.String())
		}
		return types.Float(f)
	case []interface{}:
		elems := make([]types.Value, len(x))
		for i, e := range x {
			elems[i] = fromJSON(e, schemas)
		}
		return types.ListOf(elems)
	case map[string]interface{}:
		names := make([]string, 0, len(x))
		for k := range x {
			names = append(names, k)
		}
		sort.Strings(names)
		key := fmt.Sprint(names)
		schema, ok := schemas[key]
		if !ok {
			schema = types.NewSchema(names...)
			schemas[key] = schema
		}
		fields := make([]types.Value, len(names))
		for i, n := range names {
			fields[i] = fromJSON(x[n], schemas)
		}
		return types.NewRecord(schema, fields)
	default:
		return types.String(fmt.Sprint(x))
	}
}

// WriteJSON renders values as JSON lines.
func WriteJSON(w io.Writer, rows []types.Value) error {
	bw := bufio.NewWriter(w)
	for _, row := range rows {
		b, err := json.Marshal(toJSON(row))
		if err != nil {
			return fmt.Errorf("data: json: %w", err)
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func toJSON(v types.Value) interface{} {
	switch v.Kind() {
	case types.KindNull:
		return nil
	case types.KindBool:
		return v.Bool()
	case types.KindInt:
		return v.Int()
	case types.KindFloat:
		return v.Float()
	case types.KindString:
		return v.Str()
	case types.KindList:
		out := make([]interface{}, len(v.List()))
		for i, e := range v.List() {
			out[i] = toJSON(e)
		}
		return out
	case types.KindRecord:
		rec := v.Record()
		out := make(map[string]interface{}, len(rec.Fields))
		for i, n := range rec.Schema.Names {
			out[n] = toJSON(rec.Fields[i])
		}
		return out
	default:
		return nil
	}
}
