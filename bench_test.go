// Benchmark harness: one benchmark per table and figure of the CleanM
// paper's evaluation (§8), each regenerating its result at bench scale, plus
// ablation benchmarks for the design choices DESIGN.md calls out and
// micro-benchmarks of the engine primitives the results rest on.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The experiment tables themselves (paper-shaped output) come from
// `go run ./cmd/experiments`; EXPERIMENTS.md records paper-vs-measured.
package cleandb_test

import (
	"bytes"
	"context"
	"io"
	"testing"

	"cleandb"
	"cleandb/internal/cleaning"
	"cleandb/internal/cluster"
	"cleandb/internal/data"
	"cleandb/internal/datagen"
	"cleandb/internal/engine"
	"cleandb/internal/experiments"
	"cleandb/internal/physical"
	"cleandb/internal/source"
	"cleandb/internal/textsim"
	"cleandb/internal/types"
)

func benchScale() experiments.Scale { return experiments.BenchScale() }

// --- One benchmark per paper table / figure. ---

func BenchmarkTable3TermValidationAccuracy(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Table3(s)
	}
}

func BenchmarkFigure3TermValidation(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Figure3(s)
	}
}

func BenchmarkFigure4NoiseAccuracy(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Figure4(s)
	}
}

func BenchmarkFigure5UnifiedCleaning(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Figure5(s)
	}
}

func BenchmarkTable4Transformations(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Table4(s)
	}
}

func BenchmarkFigure6DenialConstraints(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Figure6(s)
	}
}

func BenchmarkTable5InequalityDC(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Table5(s)
	}
}

func BenchmarkTableR1DCRepair(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.TableR1(s)
	}
}

func BenchmarkFigure7DedupDBLP(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Figure7(s)
	}
}

func BenchmarkFigure8aDedupCustomer(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Figure8a(s)
	}
}

func BenchmarkFigure8bDedupMAG(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Figure8b(s)
	}
}

// --- Ablation benchmarks (design choices from DESIGN.md). ---

func BenchmarkAblationSkewShuffle(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.AblationSkewShuffle(s)
	}
}

func BenchmarkAblationThetaJoin(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.AblationThetaJoin(s)
	}
}

func BenchmarkAblationNestCoalescing(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.AblationNestCoalescing(s)
	}
}

func BenchmarkAblationNormalization(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.AblationNormalization(s)
	}
}

func BenchmarkAblationBlocking(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.AblationBlocking(s)
	}
}

// --- Micro-benchmarks of the primitives the experiments rest on. ---

func BenchmarkLevenshtein(b *testing.B) {
	a, c := "stella giannakopoulou", "stela gianakopoulou"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		textsim.Levenshtein(a, c)
	}
}

func BenchmarkLevenshteinWithinEarlyExit(b *testing.B) {
	a, c := "stella giannakopoulou", "manos karpathiotakis"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		textsim.LevenshteinWithin(a, c, 3)
	}
}

func BenchmarkTokenFilterKeys(b *testing.B) {
	tf := cluster.TokenFilter{Q: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tf.Keys("stella giannakopoulou")
	}
}

func BenchmarkAggregateByKey(b *testing.B) {
	rows := datagen.GenLineitem(datagen.LineitemConfig{Rows: 20000, Seed: 1})
	key := cleaning.FieldsExtract("orderkey", "linenumber")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := engine.NewContext(8)
		engine.FromValues(ctx, rows).AggregateByKey("b", engine.KeyFunc(key), engine.GroupAgg{})
	}
}

func BenchmarkSortShuffleGroup(b *testing.B) {
	rows := datagen.GenLineitem(datagen.LineitemConfig{Rows: 20000, Seed: 1})
	key := cleaning.FieldsExtract("orderkey", "linenumber")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := engine.NewContext(8)
		engine.FromValues(ctx, rows).SortShuffleGroup("b", engine.KeyFunc(key), engine.GroupAgg{})
	}
}

func BenchmarkFDCheck(b *testing.B) {
	rows := datagen.GenLineitem(datagen.LineitemConfig{Rows: 20000, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := engine.NewContext(8)
		cleaning.FDCheck(engine.FromValues(ctx, rows),
			cleaning.FieldsExtract("orderkey", "linenumber"),
			cleaning.FieldExtract("suppkey"),
			physical.GroupAggregate).Count()
	}
}

func BenchmarkDedupTokenFiltering(b *testing.B) {
	data := datagen.GenCustomer(datagen.CustomerConfig{Rows: 2000, DupRate: 0.1, MaxDups: 10, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := engine.NewContext(8)
		cleaning.Dedup(engine.FromValues(ctx, data.Rows), cleaning.DedupConfig{
			Blocker:   cluster.TokenFilter{Q: 3},
			BlockAttr: func(v types.Value) string { return v.Field("name").Str() },
			Metric:    textsim.MetricLevenshtein,
			Theta:     0.7,
		}).Count()
	}
}

func BenchmarkDCRepair(b *testing.B) {
	// The repair subsystem alone: detect rule ψ violations, cluster, solve,
	// apply, and re-check to convergence.
	rows := datagen.GenLineitem(datagen.LineitemConfig{Rows: 10000, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := engine.NewContext(8)
		ds := engine.FromValues(ctx, rows)
		res, err := cleaning.RepairDC(ds, cleaning.DCRepairConfig{
			Check: cleaning.DCConfig{
				LeftFilter: func(v types.Value) bool { return v.Field("extendedprice").Float() < 905 },
				Pred: func(t1, t2 types.Value) bool {
					return t1.Field("extendedprice").Float() < t2.Field("extendedprice").Float() &&
						t1.Field("discount").Float() > t2.Field("discount").Float() &&
						t1.Field("extendedprice").Float() < 905
				},
				Band:   func(v types.Value) float64 { return v.Field("extendedprice").Float() },
				BandOp: "<",
			},
			RepairAttr: func(v types.Value) float64 { return v.Field("discount").Float() },
			RepairCol:  "discount",
			RepairOp:   ">",
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Remaining != 0 {
			b.Fatalf("repair did not converge: %d left", res.Remaining)
		}
	}
}

func BenchmarkRepairPipelineEndToEnd(b *testing.B) {
	// DENIAL + REPAIR through the full stack: parse → comprehension →
	// algebra → physical → detect → relax → re-check.
	rows := datagen.GenLineitem(datagen.LineitemConfig{Rows: 4000, Seed: 1})
	const query = `
SELECT * FROM lineitem t1
DENIAL(t2, t1.extendedprice < t2.extendedprice and t1.discount > t2.discount and t1.extendedprice < 905)
REPAIR(t1.discount)`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := cleandb.Open(cleandb.WithWorkers(8))
		db.RegisterRows("lineitem", rows)
		res, err := db.Query(query)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Repairs()) != 1 {
			b.Fatal("no repair summary")
		}
	}
}

func BenchmarkPipelineEndToEnd(b *testing.B) {
	// The full stack: CleanM text → comprehension → algebra → physical →
	// execution, on the running example's FD+FD+DEDUP query.
	data := datagen.GenCustomer(datagen.CustomerConfig{Rows: 2000, DupRate: 0.1, MaxDups: 10, Seed: 1})
	const query = `
SELECT * FROM customer c
FD(c.address, prefix(c.phone))
FD(c.address, c.nationkey)
DEDUP(attribute, LD, 0.8, c.address, c.name, c.phone)`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := cleandb.Open(cleandb.WithWorkers(8))
		db.RegisterRows("customer", data.Rows)
		if _, err := db.Query(query); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPreparedVsUnprepared(b *testing.B) {
	// The service-grade API's central claim: a statement prepared once and
	// executed with per-request bindings skips parsing, normalization and
	// lowering, so prepared execution beats re-planning on every call. The
	// unprepared arm disables the plan cache to measure true re-planning.
	data := datagen.GenCustomer(datagen.CustomerConfig{Rows: 200, DupRate: 0.1, MaxDups: 5, Seed: 1})
	const query = `
SELECT * FROM customer c
WHERE c.nationkey = :nation
FD(c.address, prefix(c.phone))
DEDUP(attribute, LD, 0.8, c.address, c.name)`
	b.Run("prepared", func(b *testing.B) {
		db := cleandb.Open(cleandb.WithWorkers(4))
		db.RegisterRows("customer", data.Rows)
		stmt, err := db.PrepareStmt(query)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := stmt.Exec(cleandb.Named("nation", int64(i%25))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unprepared", func(b *testing.B) {
		db := cleandb.Open(cleandb.WithWorkers(4), cleandb.WithPlanCacheSize(0))
		db.RegisterRows("customer", data.Rows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(query, cleandb.Named("nation", int64(i%25))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkConcurrentQueries(b *testing.B) {
	// Heavy concurrent traffic against one shared DB: parameterized
	// statements served from the plan cache by parallel goroutines.
	data := datagen.GenCustomer(datagen.CustomerConfig{Rows: 500, DupRate: 0.1, MaxDups: 5, Seed: 1})
	db := cleandb.Open(cleandb.WithWorkers(4))
	db.RegisterRows("customer", data.Rows)
	const query = `SELECT c.name FROM customer c WHERE c.nationkey = ?`
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			if _, err := db.Query(query, int64(i%25)); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkQueryPlanningOnly(b *testing.B) {
	// Front end + both optimizer levels without execution.
	db := cleandb.Open(cleandb.WithWorkers(2))
	data := datagen.GenCustomer(datagen.CustomerConfig{Rows: 10, Seed: 1})
	db.RegisterRows("customer", data.Rows)
	const query = `
SELECT * FROM customer c
FD(c.address, prefix(c.phone))
DEDUP(attribute, LD, 0.8, c.address, c.name)`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Explain(query); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ingestion: lazy partition-parallel sources vs the seed readers. ---

// ingestCSVRows is the acceptance-criteria scale: a generated TPC-H-style
// customer table of >= 100k rows.
const ingestCSVRows = 100_000

func csvBenchInput(b *testing.B) []byte {
	b.Helper()
	rows := datagen.GenCustomer(datagen.CustomerConfig{
		Rows: ingestCSVRows, DupRate: 0.05, MaxDups: 10, Seed: 42,
	}).Rows
	var buf bytes.Buffer
	if err := data.WriteCSV(&buf, rows); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkCSVLoadSequential is the seed path: one goroutine running
// csv.ReadAll plus cell typing.
func BenchmarkCSVLoadSequential(b *testing.B) {
	buf := csvBenchInput(b)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := data.ReadCSV(bytes.NewReader(buf))
		if err != nil || len(rows) == 0 {
			b.Fatalf("rows=%d err=%v", len(rows), err)
		}
	}
}

// BenchmarkCSVLoadParallel is the source-catalog path: the same input,
// chunk-partitioned on row boundaries and parsed across 8 goroutines,
// landing directly as engine partitions.
func BenchmarkCSVLoadParallel(b *testing.B) {
	buf := csvBenchInput(b)
	src := source.CSVBytes(buf)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts, err := src.Scan(context.Background(), 8)
		if err != nil || len(parts) == 0 {
			b.Fatalf("parts=%d err=%v", len(parts), err)
		}
	}
}

func colbinBenchInput(b *testing.B) []byte {
	b.Helper()
	rows := datagen.GenCustomer(datagen.CustomerConfig{
		Rows: ingestCSVRows, DupRate: 0.05, MaxDups: 10, Seed: 42,
	}).Rows
	var buf bytes.Buffer
	if err := data.WriteColbin(&buf, rows); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkColbinLoadSequential decodes all column chunks on one goroutine.
func BenchmarkColbinLoadSequential(b *testing.B) {
	buf := colbinBenchInput(b)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := data.ReadColbin(bytes.NewReader(buf))
		if err != nil || len(rows) == 0 {
			b.Fatalf("rows=%d err=%v", len(rows), err)
		}
	}
}

// BenchmarkColbinLoadParallel decodes column chunks concurrently and
// assembles row-range partitions concurrently.
func BenchmarkColbinLoadParallel(b *testing.B) {
	buf := colbinBenchInput(b)
	src := source.ColbinBytes(buf)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts, err := src.Scan(context.Background(), 8)
		if err != nil || len(parts) == 0 {
			b.Fatalf("parts=%d err=%v", len(parts), err)
		}
	}
}

// BenchmarkRegisterAndFirstQuery measures the end-to-end ingest difference
// at the API level: eager sequential registration vs lazy registration paid
// at first query, same statement, same results.
func BenchmarkRegisterAndFirstQuery(b *testing.B) {
	buf := csvBenchInput(b)
	q := `SELECT c.name AS n FROM customer c WHERE c.nationkey = 3`
	b.Run("eager-sequential", func(b *testing.B) {
		b.SetBytes(int64(len(buf)))
		for i := 0; i < b.N; i++ {
			db := cleandb.Open(cleandb.WithWorkers(8))
			rows, err := data.ReadCSV(bytes.NewReader(buf))
			if err != nil {
				b.Fatal(err)
			}
			db.RegisterRows("customer", rows)
			if _, err := db.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lazy-parallel", func(b *testing.B) {
		b.SetBytes(int64(len(buf)))
		for i := 0; i < b.N; i++ {
			db := cleandb.Open(cleandb.WithWorkers(8))
			db.RegisterSource("customer", source.CSVBytes(buf))
			if _, err := db.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Streaming export vs materialized export (the output half of the
// data-source API). Acceptance: on a ~100k-row result the streaming path
// must allocate O(partition) beyond the encode itself, where the
// materialized path builds the flat copy plus the whole answer buffer. The
// peak-buffer-B metric makes the difference direct: bytes the exporter held
// beyond the partition being encoded.

// exportBenchDB registers the 100k-row customer dataset used by the export
// benchmarks.
func exportBenchDB(b *testing.B) *cleandb.DB {
	b.Helper()
	rows := datagen.GenCustomer(datagen.CustomerConfig{
		Rows: ingestCSVRows, DupRate: 0.05, MaxDups: 10, Seed: 42,
	}).Rows
	db := cleandb.Open(cleandb.WithWorkers(8))
	db.RegisterRows("customer", rows)
	return db
}

const exportQuery = `SELECT * FROM customer c`

// BenchmarkExportMaterialized is the pre-sink export path: materialize the
// full result slice (the old per-call defensive copy), render everything
// into one answer buffer, then ship the buffer.
func BenchmarkExportMaterialized(b *testing.B) {
	db := exportBenchDB(b)
	b.ReportAllocs()
	b.ResetTimer()
	var peak int64
	for i := 0; i < b.N; i++ {
		res, err := db.Query(exportQuery)
		if err != nil {
			b.Fatal(err)
		}
		rows := res.Rows()
		flat := make([]cleandb.Value, len(rows))
		copy(flat, rows)
		var buf bytes.Buffer
		if err := data.WriteCSV(&buf, flat); err != nil {
			b.Fatal(err)
		}
		if int64(buf.Len()) > peak {
			peak = int64(buf.Len())
		}
		if _, err := io.Copy(io.Discard, &buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(peak), "peak-buffer-B")
}

// BenchmarkExportStreaming is the sink path: the same query pumped through
// ExecuteTo into a CSV sink — partitions encode in parallel and stitch to
// the writer in order, so nothing is retained beyond the partitions in
// flight.
func BenchmarkExportStreaming(b *testing.B) {
	db := exportBenchDB(b)
	b.ReportAllocs()
	b.ResetTimer()
	var peak int64
	for i := 0; i < b.N; i++ {
		snk := cleandb.NewCSVSink(io.Discard)
		res, err := db.ExecuteTo(context.Background(), exportQuery, snk)
		if err != nil {
			b.Fatal(err)
		}
		if res.Metrics().ExportedRows != int64(res.RowCount()) {
			b.Fatalf("exported %d of %d rows", res.Metrics().ExportedRows, res.RowCount())
		}
		if p := snk.PeakBuffered(); p > peak {
			peak = p
		}
	}
	b.ReportMetric(float64(peak), "peak-buffer-B")
}

// BenchmarkResultRowsRepeated guards the memoized flat view: after the
// first call, repeated Rows() reads on a 100k-row result must cost no
// allocation at all (they were an O(n) copy per call before).
func BenchmarkResultRowsRepeated(b *testing.B) {
	db := exportBenchDB(b)
	res, err := db.Query(exportQuery)
	if err != nil {
		b.Fatal(err)
	}
	want := len(res.Rows()) // builds the memo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(res.Rows()) != want {
			b.Fatal("rows changed between reads")
		}
	}
}
