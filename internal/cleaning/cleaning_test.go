package cleaning

import (
	"errors"
	"testing"

	"cleandb/internal/cluster"
	"cleandb/internal/engine"
	"cleandb/internal/physical"
	"cleandb/internal/textsim"
	"cleandb/internal/types"
)

var custSchema = types.NewSchema("id", "name", "address", "nationkey", "phone")

func cust(id int64, name, address string, nation int64, phone string) types.Value {
	return types.NewRecord(custSchema, []types.Value{
		types.Int(id), types.String(name), types.String(address),
		types.Int(nation), types.String(phone),
	})
}

func testCustomers(ctx *engine.Context) *engine.Dataset {
	return engine.FromValues(ctx, []types.Value{
		cust(1, "alice", "1 oak st", 1, "11-555-0001"),
		cust(2, "alicia", "1 oak st", 1, "22-555-0002"), // near-dup of 1, same address
		cust(3, "bob", "2 elm av", 2, "22-555-0003"),
		cust(4, "carol", "3 pine rd", 3, "33-555-0004"),
		cust(5, "carole", "3 pine rd", 9, "33-555-0005"), // FD2 violation + near-dup
		cust(6, "dave", "4 fir ln", 4, "44-555-0006"),
	})
}

func TestFDCheckFindsViolations(t *testing.T) {
	for _, strategy := range []physical.GroupStrategy{physical.GroupAggregate, physical.GroupSort, physical.GroupHash} {
		ctx := engine.NewContext(4)
		ds := testCustomers(ctx)
		// address → nationkey: "3 pine rd" maps to {3, 9}.
		out := FDCheck(ds, FieldExtract("address"), FieldExtract("nationkey"), strategy).Collect()
		if len(out) != 1 {
			t.Fatalf("strategy %v: violations = %d, want 1", strategy, len(out))
		}
		v := out[0]
		if v.Field("key").Str() != "3 pine rd" {
			t.Fatalf("violating key = %s", v.Field("key"))
		}
		if len(v.Field("values").List()) != 2 {
			t.Fatalf("distinct RHS values = %d", len(v.Field("values").List()))
		}
		if len(v.Field("group").List()) != 2 {
			t.Fatalf("group members = %d", len(v.Field("group").List()))
		}
	}
}

func TestFDCheckComputedRHS(t *testing.T) {
	ctx := engine.NewContext(4)
	ds := testCustomers(ctx)
	// address → prefix(phone): "1 oak st" has prefixes 11- and 22-.
	prefix := func(v types.Value) types.Value {
		return types.String(textsim.Prefix(v.Field("phone").Str(), 2))
	}
	out := FDCheck(ds, FieldExtract("address"), prefix, physical.GroupAggregate).Collect()
	if len(out) != 1 || out[0].Field("key").Str() != "1 oak st" {
		t.Fatalf("violations = %v", out)
	}
}

func TestFDCheckMultiAttrLHS(t *testing.T) {
	ctx := engine.NewContext(4)
	ds := testCustomers(ctx)
	out := FDCheck(ds, FieldsExtract("address", "id"), FieldExtract("name"), physical.GroupAggregate).Collect()
	// Every (address, id) pair is unique in this data → no violations.
	if len(out) != 0 {
		t.Fatalf("unexpected violations: %v", out)
	}
	// While (address, nationkey) → name is violated by the near-duplicates.
	out = FDCheck(ds, FieldsExtract("address", "nationkey"), FieldExtract("name"), physical.GroupAggregate).Collect()
	if len(out) != 1 {
		t.Fatalf("composite-key violations = %d, want 1", len(out))
	}
}

func TestDedupExactBlocking(t *testing.T) {
	ctx := engine.NewContext(4)
	ds := testCustomers(ctx)
	out := Dedup(ds, DedupConfig{
		BlockAttr: func(v types.Value) string { return v.Field("address").Str() },
		SimAttr:   func(v types.Value) string { return v.Field("name").Str() },
		Metric:    textsim.MetricLevenshtein,
		Theta:     0.5,
	}).Collect()
	if len(out) != 2 {
		t.Fatalf("duplicate pairs = %d, want 2 (alice/alicia, carol/carole): %v", len(out), out)
	}
	for _, p := range out {
		if p.Field("a").Field("address").Str() != p.Field("b").Field("address").Str() {
			t.Fatal("pairs must share the blocking address")
		}
	}
}

func TestDedupTokenFilteringAgreesWithExhaustive(t *testing.T) {
	ctx := engine.NewContext(4)
	ds := testCustomers(ctx)
	nameAttr := func(v types.Value) string { return v.Field("name").Str() }
	blocked := Dedup(ds, DedupConfig{
		Blocker:   cluster.TokenFilter{Q: 2},
		BlockAttr: nameAttr,
		Metric:    textsim.MetricLevenshtein,
		Theta:     0.6,
	}).Collect()
	exhaustive := Dedup(ds, DedupConfig{
		Blocker:   cluster.Exact{},
		BlockAttr: func(types.Value) string { return "all" },
		SimAttr:   nameAttr,
		Metric:    textsim.MetricLevenshtein,
		Theta:     0.6,
	}).Collect()
	if len(blocked) != len(exhaustive) {
		t.Fatalf("token filtering missed pairs: %d vs %d", len(blocked), len(exhaustive))
	}
}

func TestDedupNoSelfPairs(t *testing.T) {
	ctx := engine.NewContext(2)
	// Two identical records: not reported (identical rows are exact-duplicate
	// territory, handled by ExactDuplicates).
	rows := []types.Value{cust(1, "x", "a", 1, "p"), cust(1, "x", "a", 1, "p")}
	out := Dedup(engine.FromValues(ctx, rows), DedupConfig{
		BlockAttr: func(v types.Value) string { return v.Field("address").Str() },
		Metric:    textsim.MetricLevenshtein,
		Theta:     0.1,
	}).Collect()
	if len(out) != 0 {
		t.Fatalf("identical records reported as similarity pairs: %v", out)
	}
}

// TestDedupExplicitZeroTheta: Theta == 0 with ThetaSet must be honored (all
// non-identical intra-block pairs report), not silently rewritten to the
// 0.8 default.
func TestDedupExplicitZeroTheta(t *testing.T) {
	rows := []types.Value{
		cust(1, "johnson", "1 oak st", 1, "11-555-0001"),
		cust(2, "jonson", "1 oak st", 1, "22-555-0002"), // sim 0.857: above default θ
		cust(3, "jon", "1 oak st", 2, "22-555-0003"),    // sim ≈ 0.4: only θ=0 reports it
	}
	run := func(cfg DedupConfig) int64 {
		ctx := engine.NewContext(2)
		cfg.BlockAttr = func(v types.Value) string { return v.Field("address").Str() }
		cfg.SimAttr = func(v types.Value) string { return v.Field("name").Str() }
		cfg.Metric = textsim.MetricLevenshtein
		return Dedup(engine.FromValues(ctx, rows), cfg).Count()
	}
	if got := run(DedupConfig{}); got != 1 {
		t.Fatalf("default θ pairs = %d, want 1 (johnson/jonson only)", got)
	}
	if got := run(DedupConfig{Theta: 0, ThetaSet: true}); got != 3 {
		t.Fatalf("explicit θ=0 pairs = %d, want all 3 intra-block pairs", got)
	}
}

func TestExactDuplicates(t *testing.T) {
	ctx := engine.NewContext(2)
	rows := []types.Value{
		cust(1, "x", "a", 1, "p"),
		cust(2, "x", "a", 1, "p"),
		cust(3, "y", "b", 2, "q"),
	}
	out := ExactDuplicates(engine.FromValues(ctx, rows), FieldsExtract("name", "address"), physical.GroupAggregate).Collect()
	if len(out) != 1 {
		t.Fatalf("exact duplicate groups = %d", len(out))
	}
	if len(out[0].Field("group").List()) != 2 {
		t.Fatalf("group size = %d", len(out[0].Field("group").List()))
	}
}

func TestTermValidateFindsRepairs(t *testing.T) {
	ctx := engine.NewContext(4)
	schema := types.NewSchema("name")
	rows := []types.Value{
		types.NewRecord(schema, []types.Value{types.String("stella")}),
		types.NewRecord(schema, []types.Value{types.String("stela")}), // dirty
		types.NewRecord(schema, []types.Value{types.String("manos")}),
	}
	res := TermValidate(engine.FromValues(ctx, rows), TermValidationConfig{
		Attr:       func(v types.Value) string { return v.Field("name").Str() },
		Dictionary: []string{"stella", "manos", "ben"},
		Blocker:    cluster.TokenFilter{Q: 3},
		Metric:     textsim.MetricLevenshtein,
		Theta:      0.7,
	})
	if res.Repairs["stela"] != "stella" {
		t.Fatalf("repairs = %v", res.Repairs)
	}
	if _, bad := res.Repairs["stella"]; bad {
		t.Fatal("clean terms must not be repaired")
	}
	if res.Comparisons == 0 {
		t.Fatal("comparisons should be counted")
	}
}

// TestTermValidateExplicitZeroTheta: Theta == 0 with ThetaSet must be
// honored (every candidate with any positive similarity is suggested), not
// silently rewritten to the 0.8 default — the same sentinel contract as
// DedupConfig.
func TestTermValidateExplicitZeroTheta(t *testing.T) {
	schema := types.NewSchema("name")
	rows := []types.Value{
		types.NewRecord(schema, []types.Value{types.String("stela")}),
	}
	run := func(cfg TermValidationConfig) int {
		ctx := engine.NewContext(2)
		cfg.Attr = func(v types.Value) string { return v.Field("name").Str() }
		cfg.Dictionary = []string{"stella", "steak"} // sims ≈ 0.83 and 0.6
		cfg.Metric = textsim.MetricLevenshtein
		return len(TermValidate(engine.FromValues(ctx, rows), cfg).Suggestions)
	}
	if got := run(TermValidationConfig{}); got != 1 {
		t.Fatalf("default θ suggestions = %d, want 1 (stella only)", got)
	}
	if got := run(TermValidationConfig{Theta: 0, ThetaSet: true}); got != 2 {
		t.Fatalf("explicit θ=0 suggestions = %d, want both candidates", got)
	}
}

// TestTermValidateRepairsDeterministicAcrossWorkers: when several dictionary
// terms tie at the best similarity, the chosen repair must not depend on
// reducer partition order (and hence on Workers) — ties break to the
// lexicographically smallest suggestion.
func TestTermValidateRepairsDeterministicAcrossWorkers(t *testing.T) {
	schema := types.NewSchema("name")
	var rows []types.Value
	var dict []string
	want := map[string]string{}
	for _, sfx := range []string{"q", "r", "s", "t"} {
		rows = append(rows, types.NewRecord(schema, []types.Value{types.String("x" + sfx)}))
		// Three candidates per dirty term, all at similarity 0.5.
		for _, p := range []string{"c", "a", "b"} {
			dict = append(dict, p+sfx)
		}
		want["x"+sfx] = "a" + sfx
	}
	for _, workers := range []int{1, 4, 16} {
		ctx := engine.NewContext(workers)
		res := TermValidate(engine.FromValues(ctx, rows), TermValidationConfig{
			Attr:       func(v types.Value) string { return v.Field("name").Str() },
			Dictionary: dict,
			Metric:     textsim.MetricLevenshtein,
			Theta:      0.4,
		})
		for term, sugg := range want {
			if got := res.Repairs[term]; got != sugg {
				t.Fatalf("workers=%d: repair for %s = %q, want %q (equal-sim ties must break to the smallest suggestion)",
					workers, term, got, sugg)
			}
		}
	}
}

func TestTermValidateBlockedVsUnblockedSameRepairs(t *testing.T) {
	ctx := engine.NewContext(4)
	schema := types.NewSchema("name")
	dict := []string{"stella", "manos", "benjamin", "anastasia"}
	rows := []types.Value{
		types.NewRecord(schema, []types.Value{types.String("stela")}),
		types.NewRecord(schema, []types.Value{types.String("mamos")}),
		types.NewRecord(schema, []types.Value{types.String("anastasia")}),
	}
	mk := func(b cluster.Blocker) map[string]string {
		return TermValidate(engine.FromValues(ctx, rows), TermValidationConfig{
			Attr:       func(v types.Value) string { return v.Field("name").Str() },
			Dictionary: dict,
			Blocker:    b,
			Metric:     textsim.MetricLevenshtein,
			Theta:      0.7,
		}).Repairs
	}
	blocked := mk(cluster.TokenFilter{Q: 2})
	unblocked := mk(nil)
	if len(blocked) != len(unblocked) {
		t.Fatalf("blocking changed the repairs: %v vs %v", blocked, unblocked)
	}
	for k, v := range unblocked {
		if blocked[k] != v {
			t.Fatalf("repair mismatch for %s: %s vs %s", k, blocked[k], v)
		}
	}
}

func TestDCCheckStrategiesAgree(t *testing.T) {
	ctx := engine.NewContext(4)
	rows := GenPriceRows(200)
	threshold := 950.0
	cfg := DCConfig{
		LeftFilter: func(v types.Value) bool { return v.Field("price").Float() < threshold },
		Pred: func(a, b types.Value) bool {
			return a.Field("price").Float() < b.Field("price").Float() &&
				a.Field("discount").Float() > b.Field("discount").Float() &&
				a.Field("price").Float() < threshold
		},
		Band:   func(v types.Value) float64 { return v.Field("price").Float() },
		BandOp: "<",
	}
	counts := map[physical.ThetaStrategy]int64{}
	for _, s := range []physical.ThetaStrategy{physical.ThetaMBucket, physical.ThetaCartesian, physical.ThetaMinMax} {
		c := cfg
		c.Strategy = s
		out, err := DCCheck(engine.FromValues(ctx, rows), c)
		if err != nil {
			t.Fatalf("strategy %v: %v", s, err)
		}
		counts[s] = out.Count()
	}
	if counts[physical.ThetaMBucket] != counts[physical.ThetaCartesian] ||
		counts[physical.ThetaMBucket] != counts[physical.ThetaMinMax] {
		t.Fatalf("strategies disagree: %v", counts)
	}
	if counts[physical.ThetaMBucket] == 0 {
		t.Fatal("expected some violations")
	}
}

// GenPriceRows builds deterministic price/discount rows for DC tests.
func GenPriceRows(n int) []types.Value {
	schema := types.NewSchema("id", "price", "discount")
	rows := make([]types.Value, n)
	for i := range rows {
		rows[i] = types.NewRecord(schema, []types.Value{
			types.Int(int64(i)),
			types.Float(900 + float64((i*7919)%1000)/5),
			types.Float(float64(i%11) / 100),
		})
	}
	return rows
}

func TestDCCheckBudget(t *testing.T) {
	ctx := engine.NewContext(4)
	ctx.CompBudget = 100
	rows := GenPriceRows(200)
	_, err := DCCheck(engine.FromValues(ctx, rows), DCConfig{
		Pred:     func(a, b types.Value) bool { return true },
		Band:     func(v types.Value) float64 { return v.Field("price").Float() },
		BandOp:   "<",
		Strategy: physical.ThetaCartesian,
	})
	if !errors.Is(err, engine.ErrBudgetExceeded) {
		t.Fatalf("want budget error, got %v", err)
	}
}

func TestTransformsSplitAndFill(t *testing.T) {
	ctx := engine.NewContext(2)
	schema := types.NewSchema("d", "q")
	rows := []types.Value{
		types.NewRecord(schema, []types.Value{types.String("1998-03-07"), types.Float(10)}),
		types.NewRecord(schema, []types.Value{types.String("1999-12-31"), types.Null()}),
	}
	ds := engine.FromValues(ctx, rows)

	split := SplitDate(ds, "d").Collect()
	if split[0].Field("d_year").Int() != 1998 || split[1].Field("d_month").Int() != 12 {
		t.Fatalf("split: %v", split)
	}

	avg := ColumnAverage(ds, "q")
	if avg != 10 {
		t.Fatalf("avg = %f", avg)
	}
	filled := FillMissing(ds, "q", types.Float(avg)).Collect()
	if filled[1].Field("q").Float() != 10 {
		t.Fatalf("fill: %v", filled)
	}

	one := SplitAndFillOnePass(ds, "d", "q").Collect()
	two := SplitAndFillTwoPasses(ds, "d", "q").Collect()
	for i := range one {
		if types.Key(one[i]) != types.Key(two[i]) {
			t.Fatalf("one-pass and two-pass disagree at %d:\n%s\nvs\n%s", i, one[i], two[i])
		}
	}
}

func TestSemanticTransform(t *testing.T) {
	ctx := engine.NewContext(2)
	schema := types.NewSchema("airport")
	rows := []types.Value{
		types.NewRecord(schema, []types.Value{types.String("GVA")}),
		types.NewRecord(schema, []types.Value{types.String("ZRH")}),
		types.NewRecord(schema, []types.Value{types.String("???")}),
	}
	out, unmapped := SemanticTransform(engine.FromValues(ctx, rows), "airport",
		map[string]string{"GVA": "geneva", "ZRH": "zurich"})
	got := out.Collect()
	if got[0].Field("airport").Str() != "geneva" || got[1].Field("airport").Str() != "zurich" {
		t.Fatalf("transform: %v", got)
	}
	if len(unmapped) != 1 || unmapped[0] != "???" {
		t.Fatalf("unmapped: %v", unmapped)
	}
}

func TestScoreRepairs(t *testing.T) {
	truth := map[string]string{"stela": "stella", "mamos": "manos", "xx": "ben"}
	repairs := map[string]string{"stela": "stella", "mamos": "wrong", "extra": "noise"}
	acc := ScoreRepairs(repairs, truth)
	if acc.Correct != 1 || acc.Suggested != 3 || acc.Errors != 3 {
		t.Fatalf("counts: %+v", acc)
	}
	if acc.Precision != 1.0/3 || acc.Recall != 1.0/3 {
		t.Fatalf("precision/recall: %+v", acc)
	}
	if acc.FScore <= 0 {
		t.Fatal("fscore should be positive")
	}
	empty := ScoreRepairs(nil, nil)
	if empty.Precision != 0 || empty.Recall != 0 || empty.FScore != 0 {
		t.Fatal("empty score should be zeros")
	}
}

func TestScorePairs(t *testing.T) {
	truth := [][2]string{{"a", "b"}, {"c", "d"}}
	found := [][2]string{{"b", "a"}, {"x", "y"}, {"a", "b"}} // reversed + dup + wrong
	acc := ScorePairs(found, truth)
	if acc.Correct != 1 || acc.Suggested != 2 {
		t.Fatalf("pair score: %+v", acc)
	}
	if acc.Recall != 0.5 {
		t.Fatalf("recall: %+v", acc)
	}
}
