package sink

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"cleandb/internal/data"
	"cleandb/internal/source"
	"cleandb/internal/types"
)

// genRows builds n deterministic record rows over a fixed schema. Column
// kinds are stable per column (the colbin contract) and the values are
// text-format safe: strings never look numeric, floats keep a fraction, and
// nulls appear in every column.
func genRows(n int, seed int64) []types.Value {
	rng := rand.New(rand.NewSource(seed))
	schema := types.NewSchema("id", "name", "score", "tags")
	rows := make([]types.Value, n)
	for i := range rows {
		fields := []types.Value{
			types.Int(int64(i)),
			types.String(fmt.Sprintf("name-%c%d", 'a'+byte(rng.Intn(26)), rng.Intn(1000))),
			types.Float(float64(rng.Intn(1000)) + 0.5),
			types.ListOf([]types.Value{
				types.String(fmt.Sprintf("t%c", 'a'+byte(rng.Intn(26)))),
				types.String(fmt.Sprintf("t%c", 'a'+byte(rng.Intn(26)))),
			}),
		}
		// Sprinkle nulls through every nullable position.
		if rng.Intn(7) == 0 {
			fields[rng.Intn(3)+1] = types.Null()
		}
		rows[i] = types.NewRecord(schema, fields)
	}
	return rows
}

// chunk splits rows into at most n contiguous partitions, like the engine's
// partitioner.
func chunk(rows []types.Value, n int) [][]types.Value {
	if len(rows) == 0 {
		return nil
	}
	per := (len(rows) + n - 1) / n
	var out [][]types.Value
	for lo := 0; lo < len(rows); lo += per {
		hi := min(lo+per, len(rows))
		out = append(out, rows[lo:hi])
	}
	return out
}

var partCounts = []int{1, 2, 3, 8}

// TestStreamedWritersMatchMaterialized is the core equivalence property: for
// every byte-stream format and every partitioning, pumping partitions
// through the sink produces exactly the bytes the materialized writer
// produces on the flat rows.
func TestStreamedWritersMatchMaterialized(t *testing.T) {
	rows := genRows(257, 1)
	for _, tc := range []struct {
		name  string
		mk    func(w *bytes.Buffer) Sink
		write func(w io.Writer, rows []types.Value) error
	}{
		{"csv", func(w *bytes.Buffer) Sink { return NewCSV(w) }, data.WriteCSV},
		{"jsonl", func(w *bytes.Buffer) Sink { return NewJSONL(w) }, data.WriteJSON},
		{"colbin", func(w *bytes.Buffer) Sink { return NewColbin(w) }, data.WriteColbin},
	} {
		var want bytes.Buffer
		if err := tc.write(&want, rows); err != nil {
			t.Fatalf("%s: materialized write: %v", tc.name, err)
		}
		for _, parts := range partCounts {
			var got bytes.Buffer
			n, err := Pump(context.Background(), tc.mk(&got), chunk(rows, parts), parts)
			if err != nil {
				t.Fatalf("%s parts=%d: pump: %v", tc.name, parts, err)
			}
			if n != int64(len(rows)) {
				t.Fatalf("%s parts=%d: pumped %d rows, want %d", tc.name, parts, n, len(rows))
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("%s parts=%d: streamed bytes differ from materialized writer", tc.name, parts)
			}
		}
	}
}

// TestFileSinkRoundTrip writes rows through the file sinks and reads them
// back through the matching sources: the output half of the data-source API
// must land exactly what the input half picks up.
func TestFileSinkRoundTrip(t *testing.T) {
	rows := genRows(100, 2)
	dir := t.TempDir()
	for _, ext := range []string{".csv", ".jsonl", ".colbin"} {
		for _, parts := range partCounts {
			path := filepath.Join(dir, fmt.Sprintf("rt%d%s", parts, ext))
			snk, err := FromPath(path)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Pump(context.Background(), snk, chunk(rows, parts), parts); err != nil {
				t.Fatalf("%s parts=%d: %v", ext, parts, err)
			}
			src, err := source.FromPath(path)
			if err != nil {
				t.Fatal(err)
			}
			scanned, err := src.Scan(context.Background(), parts)
			if err != nil {
				t.Fatalf("%s parts=%d: scan: %v", ext, parts, err)
			}
			var got []types.Value
			for _, p := range scanned {
				got = append(got, p...)
			}
			if len(got) != len(rows) {
				t.Fatalf("%s parts=%d: %d rows back, want %d", ext, parts, len(got), len(rows))
			}
			for i := range rows {
				if !equivalentRow(got[i], rows[i], ext) {
					t.Fatalf("%s parts=%d row %d: %v != %v", ext, parts, i, got[i], rows[i])
				}
			}
		}
	}
}

// equivalentRow compares a round-tripped row with the original, tolerating
// the text formats' lossy spots: CSV flattens list fields to "a|b" cells
// and has no bool/list types, so list columns compare by their CSV cell
// text there. Colbin and JSON round-trip lists structurally.
func equivalentRow(got, want types.Value, ext string) bool {
	gr, wr := got.Record(), want.Record()
	if gr == nil || wr == nil || len(gr.Fields) != len(wr.Fields) {
		return false
	}
	for i := range wr.Fields {
		g, w := gr.Fields[i], wr.Fields[i]
		if ext == ".csv" && w.Kind() == types.KindList {
			if g.Str() != data.CellString(w) {
				return false
			}
			continue
		}
		if !types.Equal(g, w) {
			return false
		}
	}
	return true
}

func TestStitcherOutOfOrder(t *testing.T) {
	var out bytes.Buffer
	st := newStitcher(func(b []byte) error { out.Write(b); return nil })
	if err := st.put(2, []byte("cc")); err != nil {
		t.Fatal(err)
	}
	if err := st.put(1, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("wrote %q before partition 0 arrived", out.String())
	}
	if err := st.put(0, []byte("aaa")); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != "aaabcc" {
		t.Fatalf("stitched %q, want aaabcc", got)
	}
	if err := st.finish(); err != nil {
		t.Fatal(err)
	}
	// Peak parked: "cc" and "b" were parked together while 0 was missing.
	if st.peakParked() != 3 {
		t.Fatalf("peak parked = %d, want 3", st.peakParked())
	}
}

func TestStitcherReportsGaps(t *testing.T) {
	st := newStitcher(func([]byte) error { return nil })
	if err := st.put(0, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := st.put(2, []byte("c")); err != nil {
		t.Fatal(err)
	}
	if err := st.finish(); err == nil {
		t.Fatal("finish should report the missing partition 1")
	}
}

func TestStitcherStickyError(t *testing.T) {
	boom := errors.New("disk full")
	st := newStitcher(func([]byte) error { return boom })
	if err := st.put(0, []byte("a")); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if err := st.put(1, []byte("b")); !errors.Is(err, boom) {
		t.Fatalf("later put = %v, want sticky %v", err, boom)
	}
}

func TestPumpEmptyResult(t *testing.T) {
	dir := t.TempDir()
	for _, ext := range []string{".csv", ".jsonl", ".colbin"} {
		path := filepath.Join(dir, "empty"+ext)
		snk, err := FromPath(path)
		if err != nil {
			t.Fatal(err)
		}
		n, err := Pump(context.Background(), snk, nil, 4)
		if err != nil {
			t.Fatalf("%s: %v", ext, err)
		}
		if n != 0 {
			t.Fatalf("%s: pumped %d rows from nothing", ext, n)
		}
		src, err := source.FromPath(path)
		if err != nil {
			t.Fatal(err)
		}
		parts, err := src.Scan(context.Background(), 2)
		if err != nil {
			t.Fatalf("%s: scanning empty export: %v", ext, err)
		}
		total := 0
		for _, p := range parts {
			total += len(p)
		}
		if total != 0 {
			t.Fatalf("%s: empty export scanned %d rows", ext, total)
		}
	}
}

func TestPumpCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	_, err := Pump(ctx, NewCSV(&buf), chunk(genRows(50, 3), 8), 8)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCancelledColbinSkipsEncode locks the Aborter contract: a cancelled
// export must not pay for the colbin Close-time encode, and must not leave
// bytes that look like a finished file — even when every partition had
// already arrived before the cancellation was noticed.
func TestCancelledColbinSkipsEncode(t *testing.T) {
	rows := genRows(64, 5)
	var buf bytes.Buffer
	s := NewColbin(&buf)
	if err := s.Open([]string{"id", "name", "score", "tags"}); err != nil {
		t.Fatal(err)
	}
	for i, p := range chunk(rows, 4) {
		if err := s.WritePartition(i, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Abort(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("aborted colbin sink wrote %d bytes", buf.Len())
	}
	// And through Pump: a pre-cancelled export of a fully-present partition
	// set must abort, not encode.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	if _, err := Pump(ctx, NewColbin(&out), chunk(rows, 4), 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out.Len() != 0 {
		t.Fatalf("cancelled pump left %d bytes of colbin output", out.Len())
	}
	// CloseContext: a cancellation that lands only at close time still stops
	// the deferred encode before any output byte.
	var late bytes.Buffer
	s2 := NewColbin(&late)
	if err := s2.Open(nil); err != nil {
		t.Fatal(err)
	}
	for i, p := range chunk(rows, 4) {
		if err := s2.WritePartition(i, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s2.CloseContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("CloseContext err = %v, want context.Canceled", err)
	}
	if late.Len() != 0 {
		t.Fatalf("cancelled CloseContext wrote %d bytes", late.Len())
	}
}

func TestCSVSinkRejectsNonRecords(t *testing.T) {
	var buf bytes.Buffer
	_, err := Pump(context.Background(), NewCSV(&buf), [][]types.Value{{types.Int(1)}}, 1)
	if err == nil {
		t.Fatal("csv sink should reject non-record rows")
	}
}

func TestColbinSinkRejectsNonRecords(t *testing.T) {
	var buf bytes.Buffer
	_, err := Pump(context.Background(), NewColbin(&buf), [][]types.Value{{types.Int(1)}}, 1)
	if err == nil {
		t.Fatal("colbin sink should reject non-record rows")
	}
}

func TestMemSinkPreservesPartitions(t *testing.T) {
	rows := genRows(20, 4)
	parts := chunk(rows, 4)
	m := NewMem()
	n, err := Pump(context.Background(), m, parts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(rows)) {
		t.Fatalf("pumped %d, want %d", n, len(rows))
	}
	got := m.Partitions()
	if len(got) != len(parts) {
		t.Fatalf("%d partitions back, want %d", len(got), len(parts))
	}
	for i := range parts {
		if len(got[i]) != len(parts[i]) {
			t.Fatalf("partition %d: %d rows, want %d", i, len(got[i]), len(parts[i]))
		}
	}
	flat := m.Rows()
	for i := range rows {
		if !types.Equal(flat[i], rows[i]) {
			t.Fatalf("row %d: %v != %v", i, flat[i], rows[i])
		}
	}
	if got := m.Schema(); len(got) != 4 || got[0] != "id" {
		t.Fatalf("schema = %v", got)
	}
}

func TestFromPathDispatch(t *testing.T) {
	for path, want := range map[string]string{
		"a.csv":    "*sink.CSV",
		"a.json":   "*sink.JSONL",
		"a.jsonl":  "*sink.JSONL",
		"a.ndjson": "*sink.JSONL",
		"a.colbin": "*sink.Colbin",
	} {
		s, err := FromPath(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if got := fmt.Sprintf("%T", s); got != want {
			t.Fatalf("%s: %s, want %s", path, got, want)
		}
	}
	if _, err := FromPath("a.parquet"); err == nil {
		t.Fatal("unknown extension should error")
	}
}

// TestAbortRemovesPartialFile locks the Aborter contract for file sinks: an
// aborted export deletes the partial output instead of leaving bytes that
// read as a complete, smaller result.
func TestAbortRemovesPartialFile(t *testing.T) {
	dir := t.TempDir()
	for _, ext := range []string{".csv", ".jsonl", ".colbin"} {
		path := filepath.Join(dir, "partial"+ext)
		snk, err := FromPath(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := snk.Open([]string{"id", "name", "score", "tags"}); err != nil {
			t.Fatal(err)
		}
		if err := snk.WritePartition(0, genRows(10, 6)); err != nil {
			t.Fatal(err)
		}
		if err := snk.(Aborter).Abort(); err != nil {
			t.Fatalf("%s: abort: %v", ext, err)
		}
		if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s: partial file survived abort: %v", ext, err)
		}
	}
}

// TestFileSinkCreatesAtOpen locks the laziness contract: constructing a file
// sink must not touch the filesystem.
func TestFileSinkCreatesAtOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lazy.csv")
	s := NewCSVFile(path)
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("file exists before Open: %v", err)
	}
	if err := s.Open([]string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("file missing after Open+Close: %v", err)
	}
}

// flushRecorder is a Flush-capable destination — the http.ResponseWriter
// shape — recording how many bytes had arrived at each Flush call.
type flushRecorder struct {
	bytes.Buffer
	flushes []int
}

func (f *flushRecorder) Flush() { f.flushes = append(f.flushes, f.Len()) }

// TestStreamSinkFlushesThroughPerPartition locks the flush-through contract
// the HTTP server relies on: against a Flush-capable destination, every
// stitched partition must reach it immediately — not pool in the sink's
// buffer until Close — and the final bytes must still match the materialized
// writer exactly.
func TestStreamSinkFlushesThroughPerPartition(t *testing.T) {
	rows := genRows(64, 5)
	parts := chunk(rows, 4)
	var fr flushRecorder
	s := NewJSONL(&fr)
	if err := s.Open(nil); err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		if err := s.WritePartition(i, p); err != nil {
			t.Fatal(err)
		}
		if len(fr.flushes) != i+1 {
			t.Fatalf("partition %d: flush calls = %d, want %d (each stitched partition must be pushed through)",
				i, len(fr.flushes), i+1)
		}
		if i > 0 && fr.flushes[i] <= fr.flushes[i-1] {
			t.Fatalf("partition %d: no new bytes reached the destination (%v)", i, fr.flushes)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := data.WriteJSON(&want, rows); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fr.Bytes(), want.Bytes()) {
		t.Fatal("flush-through changed the output bytes")
	}
}

// TestStreamSinkNoFlushForPlainWriters: destinations without a Flush method
// (plain buffers, files) keep the batched behaviour — bytes arrive at Close.
func TestStreamSinkNoFlushForPlainWriters(t *testing.T) {
	parts := chunk(genRows(8, 7), 2)
	var buf bytes.Buffer
	w := struct{ io.Writer }{&buf} // hide bytes.Buffer's method set
	s := NewJSONL(w)
	if err := s.Open(nil); err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		if err := s.WritePartition(i, p); err != nil {
			t.Fatal(err)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("plain writer received %d bytes before Close", buf.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no bytes after Close")
	}
}
