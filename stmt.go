package cleandb

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"cleandb/internal/core"
	"cleandb/internal/types"
)

// NamedArg binds a value to a `:name` placeholder. Build one with Named.
type NamedArg struct {
	Name  string
	Value any
}

// Named returns a NamedArg binding value to the `:name` placeholder.
// Positional `?` placeholders are bound by the plain (non-NamedArg)
// arguments in order; the two styles may be mixed in one call.
func Named(name string, value any) NamedArg { return NamedArg{Name: name, Value: value} }

// Stmt is a prepared CleanM statement: the text was parsed, de-sugared,
// normalized and lowered through all three optimization levels exactly once,
// and the result can be executed any number of times with different
// parameter bindings.
//
// A Stmt is immutable and safe for concurrent use by multiple goroutines;
// each execution gets independent parameter bindings, cost counters and
// cancellation. The statement is planned against the catalog as of
// PrepareStmt — data registered afterwards is not visible to it (prepare
// again to pick it up).
type Stmt struct {
	prep *core.Prepared
	// query is the original statement text (for diagnostics).
	query string
}

// Query returns the statement text the Stmt was prepared from.
func (s *Stmt) Query() string { return s.query }

// Params lists the statement's parameter keys in appearance order: "$1",
// "$2", ... for positional `?` placeholders, lowercased names for `:name`.
func (s *Stmt) Params() []string { return s.prep.Params() }

// Explain returns the statement's three-level EXPLAIN text (computed at
// prepare time; parameters render as placeholders).
func (s *Stmt) Explain() string { return s.prep.Explain() }

// Exec executes the statement with the given arguments and no cancellation.
func (s *Stmt) Exec(args ...any) (*Result, error) {
	return s.ExecContext(context.Background(), args...)
}

// ExecContext executes the statement under ctx with the given arguments.
// Cancellation and deadlines on ctx propagate into the engine's operator
// loops, so a cancelled execution aborts promptly (returning ctx.Err())
// rather than finishing a runaway theta join.
func (s *Stmt) ExecContext(ctx context.Context, args ...any) (*Result, error) {
	params, err := bindArgs(s.prep.Params(), args)
	if err != nil {
		return nil, err
	}
	res, err := s.prep.ExecuteContext(ctx, params)
	if err != nil {
		return nil, err
	}
	// Executing a prepared statement reuses its plan by construction.
	return &Result{inner: res, planReused: true}, nil
}

// ExecuteTo executes the statement under ctx with the given arguments and
// pumps its primary output straight into sk, partition-parallel under the
// query's job context — the prepared-statement face of DB.ExecuteTo. The
// returned Result carries metrics and repair summaries; the rows went to
// the sink.
func (s *Stmt) ExecuteTo(ctx context.Context, sk Sink, args ...any) (*Result, error) {
	params, err := bindArgs(s.prep.Params(), args)
	if err != nil {
		return nil, err
	}
	res, err := s.prep.ExecuteToContext(ctx, params, sk)
	if err != nil {
		return nil, err
	}
	return &Result{inner: res, planReused: true}, nil
}

// bindArgs resolves call arguments against the statement's parameter keys:
// plain arguments fill `?` placeholders in order, NamedArg values fill
// `:name` placeholders. Every placeholder must be bound, every argument must
// be consumed.
func bindArgs(keys []string, args []any) (map[string]types.Value, error) {
	var positional []string
	named := map[string]bool{}
	for _, k := range keys {
		if strings.HasPrefix(k, "$") {
			positional = append(positional, k)
		} else {
			named[k] = true
		}
	}
	params := make(map[string]types.Value, len(keys))
	pi := 0
	for _, a := range args {
		if na, ok := a.(NamedArg); ok {
			k := strings.ToLower(na.Name)
			if !named[k] {
				return nil, fmt.Errorf("cleandb: statement has no :%s parameter", k)
			}
			v, err := toValue(na.Value)
			if err != nil {
				return nil, fmt.Errorf("cleandb: argument :%s: %w", k, err)
			}
			params[k] = v
			continue
		}
		if pi >= len(positional) {
			return nil, fmt.Errorf("cleandb: too many positional arguments (statement has %d '?' placeholders)", len(positional))
		}
		v, err := toValue(a)
		if err != nil {
			return nil, fmt.Errorf("cleandb: argument %d: %w", pi+1, err)
		}
		params[positional[pi]] = v
		pi++
	}
	if pi < len(positional) {
		return nil, fmt.Errorf("cleandb: statement has %d '?' placeholders, got %d positional arguments", len(positional), pi)
	}
	for k := range named {
		if _, ok := params[k]; !ok {
			return nil, fmt.Errorf("cleandb: parameter :%s is not bound", k)
		}
	}
	return params, nil
}

// toValue converts a Go value to a CleanDB Value. Signed and unsigned
// integers map to Int (unsigned ones overflow-checked), floats to Float,
// and time.Time binds as its RFC 3339 string — matching how the text
// formats represent timestamps — so typical Go callers don't trip over
// "unsupported argument type".
func toValue(a any) (types.Value, error) {
	switch v := a.(type) {
	case types.Value:
		return v, nil
	case nil:
		return types.Null(), nil
	case bool:
		return types.Bool(v), nil
	case int:
		return types.Int(int64(v)), nil
	case int32:
		return types.Int(int64(v)), nil
	case int64:
		return types.Int(v), nil
	case uint:
		if uint64(v) > math.MaxInt64 {
			return types.Null(), fmt.Errorf("uint value %d overflows int64", v)
		}
		return types.Int(int64(v)), nil
	case uint32:
		return types.Int(int64(v)), nil
	case uint64:
		if v > math.MaxInt64 {
			return types.Null(), fmt.Errorf("uint64 value %d overflows int64", v)
		}
		return types.Int(int64(v)), nil
	case float32:
		return types.Float(float64(v)), nil
	case float64:
		return types.Float(v), nil
	case string:
		return types.String(v), nil
	case time.Time:
		// RFC3339Nano keeps sub-second precision (and formats identically to
		// RFC3339 for whole-second stamps), so equality against stored
		// timestamp strings doesn't silently truncate.
		return types.String(v.Format(time.RFC3339Nano)), nil
	default:
		return types.Null(), fmt.Errorf("unsupported argument type %T", a)
	}
}
