package algebra

import (
	"fmt"
	"sort"
	"strings"

	"cleandb/internal/monoid"
)

// Rewriter applies the algebra-level optimizations of paper §5: selection
// fusion, common-subplan elimination (which realizes both the shared-scan DAG
// and the Plan B + Plan C → Plan BC nest coalescing of Figure 1), and
// assembly of multi-operation cleaning queries into one DAG topped by a full
// outer join.
type Rewriter struct {
	// Trace, when non-nil, receives a line per applied rewrite.
	Trace func(rule, detail string)
}

func (r *Rewriter) trace(rule, detail string) {
	if r.Trace != nil {
		r.Trace(rule, detail)
	}
}

// Rewrite optimizes a single plan.
func (r *Rewriter) Rewrite(p Plan) Plan {
	p = r.fuseSelects(p)
	ps := r.Share([]Plan{p})
	return ps[0]
}

// RewriteAll optimizes a set of root plans together, sharing common
// sub-plans across roots. Two cleaning operations that group the same source
// on the same key collapse onto a single Nest node — the inter-operator work
// sharing the paper demonstrates on the running example.
func (r *Rewriter) RewriteAll(roots []Plan) []Plan {
	out := make([]Plan, len(roots))
	for i, p := range roots {
		out[i] = r.fuseSelects(p)
	}
	return r.Share(out)
}

// Unified builds the paper's "Overall Plan": the violation outputs of all
// sub-plans are combined with a full outer join on the entity key, emitting
// entities with at least one violation. Inputs are rewritten together first.
func (r *Rewriter) Unified(roots []Plan, keys []monoid.Expr, names []string) Plan {
	shared := r.RewriteAll(roots)
	return &CombineAll{Inputs: shared, Keys: keys, Names: names}
}

// UnifiedUnshared builds the same combined plan but without cross-plan
// sharing — each operation keeps its own scan and grouping. This models a
// relational optimizer (Spark SQL's Catalyst) that combines cleaning
// operations with an outer join yet cannot detect their common work
// (paper §8.2: unified execution ends up more expensive than standalone).
func (r *Rewriter) UnifiedUnshared(roots []Plan, keys []monoid.Expr, names []string) Plan {
	rewritten := make([]Plan, len(roots))
	for i, p := range roots {
		rewritten[i] = r.fuseSelects(p)
	}
	return &CombineAll{Inputs: rewritten, Keys: keys, Names: names}
}

// fuseSelects merges adjacent Select nodes into one conjunctive predicate.
func (r *Rewriter) fuseSelects(p Plan) Plan {
	rebuilt := rebuildChildren(p, func(c Plan) Plan { return r.fuseSelects(c) })
	if s, ok := rebuilt.(*Select); ok {
		if inner, ok := s.Child.(*Select); ok {
			r.trace("fuse-select", s.Pred.String())
			return &Select{Child: inner.Child, Pred: &monoid.BinOp{Op: "and", L: inner.Pred, R: s.Pred}}
		}
	}
	return rebuilt
}

// Share performs common-subplan elimination across roots: structurally equal
// sub-plans are unified into one shared node. Because the physical level
// memoizes shared nodes, a Nest that two cleaning operations both need runs
// once (nest coalescing), and equal Scans read their source once (shared
// scan).
func (r *Rewriter) Share(roots []Plan) []Plan {
	memo := map[string]Plan{}
	var rebuild func(p Plan) Plan
	rebuild = func(p Plan) Plan {
		q := rebuildChildren(p, rebuild)
		key := Encode(q)
		if existing, ok := memo[key]; ok {
			if existing != q {
				switch q.(type) {
				case *Nest:
					r.trace("coalesce-nest", q.String())
				case *Scan:
					r.trace("share-scan", q.String())
				default:
					r.trace("share-subplan", q.String())
				}
			}
			return existing
		}
		memo[key] = q
		return q
	}
	out := make([]Plan, len(roots))
	for i, p := range roots {
		out[i] = rebuild(p)
	}
	return out
}

// rebuildChildren clones p with each child passed through f. Nodes without
// children are returned unchanged.
func rebuildChildren(p Plan, f func(Plan) Plan) Plan {
	switch n := p.(type) {
	case *Scan:
		return n
	case *Select:
		c := f(n.Child)
		if c == n.Child {
			return n
		}
		return &Select{Child: c, Pred: n.Pred}
	case *Extend:
		c := f(n.Child)
		if c == n.Child {
			return n
		}
		return &Extend{Child: c, Var: n.Var, E: n.E}
	case *Unnest:
		c := f(n.Child)
		if c == n.Child {
			return n
		}
		return &Unnest{Child: c, Path: n.Path, As: n.As, Outer: n.Outer}
	case *Join:
		l, rt := f(n.Left), f(n.Right)
		if l == n.Left && rt == n.Right {
			return n
		}
		return &Join{Left: l, Right: rt, LeftKeys: n.LeftKeys, RightKeys: n.RightKeys,
			Theta: n.Theta, Outer: n.Outer, Residual: n.Residual}
	case *Reduce:
		c := f(n.Child)
		if c == n.Child {
			return n
		}
		return &Reduce{Child: c, M: n.M, Head: n.Head, As: n.As}
	case *Nest:
		c := f(n.Child)
		if c == n.Child {
			return n
		}
		return &Nest{Child: c, Keys: n.Keys, Aggs: n.Aggs, As: n.As, Having: n.Having}
	case *CombineAll:
		inputs := make([]Plan, len(n.Inputs))
		changed := false
		for i, in := range n.Inputs {
			inputs[i] = f(in)
			if inputs[i] != in {
				changed = true
			}
		}
		if !changed {
			return n
		}
		return &CombineAll{Inputs: inputs, Keys: n.Keys, Names: n.Names}
	default:
		return p
	}
}

// Encode renders a canonical string for a plan subtree, used as the
// common-subplan elimination key.
func Encode(p Plan) string {
	var sb strings.Builder
	encodeInto(&sb, p)
	return sb.String()
}

func encodeInto(sb *strings.Builder, p Plan) {
	switch n := p.(type) {
	case *Scan:
		fmt.Fprintf(sb, "scan(%s,%s)", n.Source, n.Alias)
	case *Select:
		fmt.Fprintf(sb, "select(%s,", n.Pred)
		encodeInto(sb, n.Child)
		sb.WriteByte(')')
	case *Extend:
		fmt.Fprintf(sb, "extend(%s,%s,", n.Var, n.E)
		encodeInto(sb, n.Child)
		sb.WriteByte(')')
	case *Unnest:
		fmt.Fprintf(sb, "unnest(%s,%s,%v,", n.Path, n.As, n.Outer)
		encodeInto(sb, n.Child)
		sb.WriteByte(')')
	case *Join:
		sb.WriteString("join(")
		for i := range n.LeftKeys {
			fmt.Fprintf(sb, "%s=%s;", n.LeftKeys[i], n.RightKeys[i])
		}
		if n.Theta != nil {
			fmt.Fprintf(sb, "theta:%s;", n.Theta)
		}
		if n.Residual != nil {
			fmt.Fprintf(sb, "res:%s;", n.Residual)
		}
		fmt.Fprintf(sb, "outer:%v,", n.Outer)
		encodeInto(sb, n.Left)
		sb.WriteByte(',')
		encodeInto(sb, n.Right)
		sb.WriteByte(')')
	case *Reduce:
		fmt.Fprintf(sb, "reduce(%s,%s,%s,", n.M.Name(), n.Head, n.As)
		encodeInto(sb, n.Child)
		sb.WriteByte(')')
	case *Nest:
		sb.WriteString("nest(")
		for _, k := range n.Keys {
			fmt.Fprintf(sb, "%s;", k)
		}
		for _, a := range n.Aggs {
			fmt.Fprintf(sb, "%s=%s/%s;", a.Name, a.M.Name(), a.Val)
		}
		if n.Having != nil {
			fmt.Fprintf(sb, "having:%s;", n.Having)
		}
		fmt.Fprintf(sb, "%s,", n.As)
		encodeInto(sb, n.Child)
		sb.WriteByte(')')
	case *CombineAll:
		sb.WriteString("combine(")
		for i, in := range n.Inputs {
			fmt.Fprintf(sb, "%s:%s:", n.Names[i], n.Keys[i])
			encodeInto(sb, in)
			sb.WriteByte(';')
		}
		sb.WriteByte(')')
	default:
		fmt.Fprintf(sb, "%T", p)
	}
}

// CountNodes returns the number of distinct nodes in the DAG — used by tests
// to assert that sharing actually reduced plan size.
func CountNodes(roots ...Plan) int {
	seen := map[Plan]struct{}{}
	var walk func(p Plan)
	walk = func(p Plan) {
		if _, ok := seen[p]; ok {
			return
		}
		seen[p] = struct{}{}
		for _, c := range p.Children() {
			walk(c)
		}
	}
	for _, p := range roots {
		walk(p)
	}
	return len(seen)
}

// SourcesOf lists the distinct scan sources of a plan, sorted.
func SourcesOf(p Plan) []string {
	set := map[string]struct{}{}
	var walk func(p Plan)
	walk = func(p Plan) {
		if s, ok := p.(*Scan); ok {
			set[s.Source] = struct{}{}
		}
		for _, c := range p.Children() {
			walk(c)
		}
	}
	walk(p)
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
