package cleaning

import (
	"sort"

	"cleandb/internal/engine"
	"cleandb/internal/types"
)

// This file is the delta side of denial-constraint detection: given a
// dataset in which only some rows are "fresh" (appended tuples, or tuples a
// repair round rewrote), the violating pairs that involve a fresh row are
// exactly the pairs a full re-check could report beyond those already known.
// Enumerating only fresh×all plus old×fresh bounds the work by the delta
// instead of the dataset, which is what makes both incremental query
// execution and the repair fixpoint's later rounds cheap.
//
// The enumeration reuses the band structure the theta-join strategies prune
// on: rows are sorted by the band attribute once, and each outer row only
// scans the band range its BandOp admits, so candidate counts shrink the
// same way the full join's bucket pruning shrinks them.

// bandRow pairs a row's global index with its band value for the sorted
// candidate views.
type bandRow struct {
	idx  int
	band float64
}

// sortByBand returns rows[idx] for idx in ids, ordered by band value (ties
// by global index, so the view is deterministic).
func sortByBand(ids []int, band []float64) []bandRow {
	out := make([]bandRow, len(ids))
	for i, id := range ids {
		out[i] = bandRow{idx: id, band: band[id]}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].band != out[j].band {
			return out[i].band < out[j].band
		}
		return out[i].idx < out[j].idx
	})
	return out
}

// bandRange returns the half-open index range of view whose band values can
// satisfy `x op band` (the candidates for a fixed left value x). An unknown
// op admits everything.
func bandRange(view []bandRow, x float64, op string) (int, int) {
	firstGE := func() int {
		return sort.Search(len(view), func(i int) bool { return view[i].band >= x })
	}
	firstGT := func() int {
		return sort.Search(len(view), func(i int) bool { return view[i].band > x })
	}
	switch op {
	case "<":
		return firstGT(), len(view)
	case "<=":
		return firstGE(), len(view)
	case ">":
		return 0, firstGE()
	case ">=":
		return 0, firstGT()
	default:
		return 0, len(view)
	}
}

// flipOp mirrors a band comparison: `a op b` holds iff `b flip(op) a`.
func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}

// DeltaDCPairs enumerates the violating pairs of cfg that touch at least one
// fresh row: fresh t1 against every row (fresh×fresh included, self-pairs
// included, exactly as the self-join enumerates them), plus old t1 against
// fresh t2. Rows are taken in the dataset's global order, so together with a
// prior run's pairs over the old rows this reproduces the full check's pair
// multiset.
//
// Every candidate admitted by the band range is charged one comparison, the
// same accounting rule the join strategies apply to their unpruned cells; the
// context's comparison budget aborts the enumeration with ErrBudgetExceeded.
func DeltaDCPairs(ds *engine.Dataset, fresh func(i int, v types.Value) bool, cfg DCConfig) ([][2]types.Value, error) {
	ctx := ds.Context()
	rows := ds.Collect()
	n := len(rows)

	freshMask := make([]bool, n)
	var freshIdx []int
	for i, r := range rows {
		if fresh(i, r) {
			freshMask[i] = true
			freshIdx = append(freshIdx, i)
		}
	}
	if len(freshIdx) == 0 {
		return nil, nil
	}
	// Record the pass in the strategy ledger alongside the join strategies it
	// substitutes for, so /metrics strategy counts cover delta-served
	// executions too.
	if cfg.Band != nil {
		ctx.Metrics().NoteStrategy("join:delta-band")
	} else {
		ctx.Metrics().NoteStrategy("join:delta-scan")
	}

	passesLeft := func(v types.Value) bool {
		return cfg.LeftFilter == nil || cfg.LeftFilter(v)
	}

	// Old left-side rows: the t1 candidates of the old×fresh half.
	var oldLeft []int
	for i, r := range rows {
		if !freshMask[i] && passesLeft(r) {
			oldLeft = append(oldLeft, i)
		}
	}

	pruned := cfg.Band != nil
	var band []float64
	var allView, oldLeftView []bandRow
	if pruned {
		band = make([]float64, n)
		for i, r := range rows {
			band[i] = cfg.Band(r)
		}
		allIdx := make([]int, n)
		for i := range allIdx {
			allIdx[i] = i
		}
		allView = sortByBand(allIdx, band)
		oldLeftView = sortByBand(oldLeft, band)
	}

	var out [][2]types.Value
	emit := func(t1, t2 types.Value) error {
		if err := ctx.ChargeComparisons(1); err != nil {
			return err
		}
		if cfg.Pred(t1, t2) {
			out = append(out, [2]types.Value{t1, t2})
		}
		return nil
	}

	// Fresh t1 × every t2 (the new×new and new×old halves).
	for _, i := range freshIdx {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t1 := rows[i]
		if !passesLeft(t1) {
			continue
		}
		if pruned {
			lo, hi := bandRange(allView, band[i], cfg.BandOp)
			for _, c := range allView[lo:hi] {
				if err := emit(t1, rows[c.idx]); err != nil {
					return nil, err
				}
			}
		} else {
			for _, t2 := range rows {
				if err := emit(t1, t2); err != nil {
					return nil, err
				}
			}
		}
	}

	// Old t1 × fresh t2 (the old×new half; old t1 keeps the two loops
	// disjoint, so no pair is enumerated twice).
	for _, j := range freshIdx {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t2 := rows[j]
		if pruned {
			lo, hi := bandRange(oldLeftView, band[j], flipOp(cfg.BandOp))
			for _, c := range oldLeftView[lo:hi] {
				if err := emit(rows[c.idx], t2); err != nil {
					return nil, err
				}
			}
		} else {
			for _, i := range oldLeft {
				if err := emit(rows[i], t2); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}
