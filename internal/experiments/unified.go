package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"cleandb/internal/bigdansing"
	"cleandb/internal/cleaning"
	"cleandb/internal/core"
	"cleandb/internal/datagen"
	"cleandb/internal/engine"
	"cleandb/internal/physical"
	"cleandb/internal/textsim"
	"cleandb/internal/types"
)

// Figure-5 CleanM queries: the running example with the term-validation part
// replaced by a second FD, as the paper's §8.2 does.
const (
	fig5FD1   = `SELECT * FROM customer c FD(c.address, prefix(c.phone))`
	fig5FD2   = `SELECT * FROM customer c FD(c.address, c.nationkey)`
	fig5Dedup = `SELECT * FROM customer c DEDUP(attribute, LD, 0.8, c.address, c.name, c.phone)`
	fig5All   = `SELECT * FROM customer c
FD(c.address, prefix(c.phone))
FD(c.address, c.nationkey)
DEDUP(attribute, LD, 0.8, c.address, c.name, c.phone)`
)

// Figure5 reproduces Figure 5: unified data cleaning on the customer table —
// FD1, FD2 and DEDUP as separate tasks versus one combined task, across
// CleanDB, Spark SQL and BigDansing. All three systems execute the same
// CleanM plans through the same pipeline; what differs is exactly what the
// paper attributes to them: the grouping shuffle (aggregate/sort/hash) and
// whether the optimizer shares the common grouping across operators.
func Figure5(s Scale) *Table {
	data := datagen.GenCustomer(datagen.CustomerConfig{
		Rows: s.Customers, DupRate: 0.10, MaxDups: 50, Seed: s.Seed,
	})
	t := &Table{
		ID:      "Figure 5",
		Title:   "Unified data cleaning: Customer (FD2, FD1, DEDUP, DEDUP+FD1+FD2)",
		Columns: []string{"System", "FD1", "FD2", "DEDUP", "Separate(sum)", "Combined"},
	}

	runQuery := func(q string, group physical.GroupStrategy, noShare bool) int64 {
		ctx := engine.NewContext(s.Workers)
		p := core.NewPipeline(ctx, map[string]*engine.Dataset{
			"customer": engine.FromValues(ctx, data.Rows),
		})
		p.Config.Group = group
		p.NoSharing = noShare
		if _, err := p.Run(q); err != nil {
			panic(fmt.Sprintf("figure5: %v", err))
		}
		return ctx.Metrics().SimTicks()
	}

	addSystem := func(name string, group physical.GroupStrategy, noShare bool) (sum, combined int64) {
		fd1 := runQuery(fig5FD1, group, noShare)
		fd2 := runQuery(fig5FD2, group, noShare)
		dd := runQuery(fig5Dedup, group, noShare)
		all := runQuery(fig5All, group, noShare)
		t.AddRow(name, ticks(fd1), ticks(fd2), ticks(dd), ticks(fd1+fd2+dd), ticks(all))
		return fd1 + fd2 + dd, all
	}
	// CleanDB: skew-aware grouping + coalesced nest and shared scan.
	addSystem("CleanDB", physical.GroupAggregate, false)
	// Spark SQL: sort-based shuffles; the combined query still outer-joins
	// the outputs but cannot share the grouping (Catalyst has no monoid
	// view of the operators).
	addSystem("SparkSQL", physical.GroupSort, true)

	// BigDansing: hash shuffles, one rule at a time, no prefix() support.
	bd := bigdansing.System{}
	runBD := func(f func(*engine.Dataset) error) (int64, bool) {
		ctx := engine.NewContext(s.Workers)
		ds := engine.FromValues(ctx, data.Rows)
		if err := f(ds); err != nil {
			return 0, false
		}
		return ctx.Metrics().SimTicks(), true
	}
	cell := func(tk int64, ok bool) string {
		if !ok {
			return "n/a"
		}
		return ticks(tk)
	}
	bfd1, ok1 := runBD(func(ds *engine.Dataset) error {
		_, err := bd.FDCheck(ds, []string{"address"}, []string{"phone"}, true) // prefix() computed → unsupported
		return err
	})
	bfd2, ok2 := runBD(func(ds *engine.Dataset) error {
		_, err := bd.FDCheck(ds, []string{"address"}, []string{"nationkey"}, false)
		return err
	})
	bdd, ok3 := runBD(func(ds *engine.Dataset) error {
		_, err := bd.DedupCustomer(ds, textsim.MetricLevenshtein, 0.8)
		return err
	})
	t.AddRow("BigDansing", cell(bfd1, ok1), cell(bfd2, ok2), cell(bdd, ok3), "n/a (one op at a time)", "n/a")

	t.Note("%d customers + Zipf duplicates; ticks = simulated straggler time", s.Customers)
	t.Note("paper shape: CleanDB combined < sum of separates (shared grouping);")
	t.Note("Spark SQL combined > separate (outer-join overhead); BigDansing lacks FD1 and combined mode")
	return t
}

// Table4 reproduces Table 4: the overhead of syntactic transformations over
// a plain full-projection query, and the benefit of fusing both repairs into
// one pass.
func Table4(s Scale) *Table {
	rows := datagen.GenLineitem(datagen.LineitemConfig{
		Rows:                s.RowsPerSF * 100,
		MissingQuantityRate: 0.05,
		Seed:                s.Seed,
	})
	// Interleaved measurement: every workload is timed in each round, so
	// allocator and GC-pacing state is shared evenly instead of penalizing
	// whichever workload runs first. Per-workload medians over the rounds.
	workloads := []func(*engine.Dataset){
		func(ds *engine.Dataset) { cleaning.ProjectAll(ds).Count() },
		func(ds *engine.Dataset) { cleaning.SplitDate(ds, "receiptdate").Count() },
		func(ds *engine.Dataset) {
			avg := cleaning.ColumnAverage(ds, "quantity")
			cleaning.FillMissing(ds, "quantity", types.Float(avg)).Count()
		},
		func(ds *engine.Dataset) { cleaning.SplitAndFillTwoPasses(ds, "receiptdate", "quantity").Count() },
		func(ds *engine.Dataset) { cleaning.SplitAndFillOnePass(ds, "receiptdate", "quantity").Count() },
	}
	ctx := engine.NewContext(s.Workers)
	ds := engine.FromValues(ctx, rows)
	const rounds = 7
	times := make([][]time.Duration, len(workloads))
	for _, w := range workloads { // warmup round, untimed
		w(ds)
	}
	for r := 0; r < rounds; r++ {
		for i, w := range workloads {
			runtime.GC()
			start := time.Now()
			w(ds)
			times[i] = append(times[i], time.Since(start))
		}
	}
	median := func(ts []time.Duration) time.Duration {
		sorted := append([]time.Duration(nil), ts...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return sorted[len(sorted)/2]
	}
	base := median(times[0])
	split := median(times[1])
	fill := median(times[2])
	two := median(times[3])
	one := median(times[4])

	slow := func(d time.Duration) string {
		return fmt.Sprintf("%.2fx", float64(d)/float64(base))
	}
	t := &Table{
		ID:      "Table 4",
		Title:   "Overhead of syntactic transformations vs a plain projection query",
		Columns: []string{"Operation", "Slowdown", "Wall"},
	}
	t.AddRow("Plain query (baseline)", "1.00x", ms(base))
	t.AddRow("Split date", slow(split), ms(split))
	t.AddRow("Fill values", slow(fill), ms(fill))
	t.AddRow("Split date & Fill values (two steps)", slow(two), ms(two))
	t.AddRow("Split date & Fill values (one step)", slow(one), ms(one))
	t.Note("%d lineitem rows, 5%% missing quantity", s.RowsPerSF*100)
	t.Note("paper shape: each op ≈1.15x, two steps ≈2.3x, fused one step ≈1.19x")
	return t
}
