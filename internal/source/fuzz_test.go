package source

import (
	"bytes"
	"context"
	"testing"

	"cleandb/internal/data"
	"cleandb/internal/types"
)

// FuzzCSVParallelMatchesSequential is the equivalence oracle for the
// chunk-parallel CSV loader: whenever the seed sequential reader accepts an
// input, every parallelism degree must accept it too and produce the same
// rows in the same order. (When the sequential reader rejects an input the
// chunked one is allowed to fail with a different message — both paths see
// the same malformed bytes, just split differently.)
func FuzzCSVParallelMatchesSequential(f *testing.F) {
	f.Add([]byte("a,b\n1,x\n2,y\n"))
	f.Add([]byte("id,name\n1,\"multi\nline\"\n2,\"esc\"\"aped\"\n"))
	f.Add([]byte("a,b,c\n1,,3\n,2,\n"))
	f.Add([]byte("h\n"))
	f.Add([]byte(""))
	f.Add([]byte("a,b\r\n1,2\r\n"))
	f.Fuzz(func(t *testing.T, in []byte) {
		want, err := data.ReadCSV(bytes.NewReader(in))
		if err != nil {
			return
		}
		for _, parts := range []int{1, 2, 3, 8} {
			got, err := CSVBytes(in).Scan(context.Background(), parts)
			if err != nil {
				t.Fatalf("parts=%d: sequential accepted but parallel failed: %v", parts, err)
			}
			flat := flatten(got)
			if len(flat) != len(want) {
				t.Fatalf("parts=%d: %d rows, want %d", parts, len(flat), len(want))
			}
			for i := range want {
				if !types.Equal(flat[i], want[i]) {
					t.Fatalf("parts=%d row %d: %v != %v", parts, i, flat[i], want[i])
				}
			}
		}
	})
}
