// Package lockfixture exercises the locksnapshot analyzer.
package lockfixture

import (
	"context"
	"sync"
)

type registry struct {
	mu    sync.RWMutex
	items map[string]int
}

// execute stands in for operator execution: anything that takes a context is
// assumed to run query-scale work.
func execute(ctx context.Context, name string) error {
	_ = ctx
	_ = name
	return nil
}

// sendWhileLocked streams results while holding the read lock: flagged.
func (r *registry) sendWhileLocked(out chan<- int) {
	r.mu.RLock()
	for _, v := range r.items {
		out <- v // want `channel send while r.mu is held`
	}
	r.mu.RUnlock()
}

// snapshotThenSend is the blessed shape: copy under the lock, send after.
func (r *registry) snapshotThenSend(out chan<- int) {
	r.mu.RLock()
	vals := make([]int, 0, len(r.items))
	for _, v := range r.items {
		vals = append(vals, v)
	}
	r.mu.RUnlock()
	for _, v := range vals {
		out <- v
	}
}

// execWhileLocked holds the catalog lock across operator execution — the
// deferred unlock keeps it held to function end: flagged.
func (r *registry) execWhileLocked(ctx context.Context) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name := range r.items {
		if err := execute(ctx, name); err != nil { // want `context-taking execute while r.mu is held`
			return err
		}
	}
	return nil
}

// unlockThenExec snapshots the names, releases the lock, then executes.
func (r *registry) unlockThenExec(ctx context.Context) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.items))
	for name := range r.items {
		names = append(names, name)
	}
	r.mu.RUnlock()
	for _, name := range names {
		if err := execute(ctx, name); err != nil {
			return err
		}
	}
	return nil
}

// recvWhileLocked blocks on a channel receive under the write lock: flagged.
func (r *registry) recvWhileLocked(in <-chan int) int {
	r.mu.Lock()
	v := <-in // want `channel receive while r.mu is held`
	r.items["last"] = v
	r.mu.Unlock()
	return v
}

// goroutineIsSeparate: the spawned body runs outside the critical section
// and is analyzed as its own scope.
func (r *registry) goroutineIsSeparate(out chan<- int) {
	r.mu.Lock()
	n := len(r.items)
	r.mu.Unlock()
	go func() {
		out <- n
	}()
}
