// Package algebra implements CleanM's second abstraction level: the nested
// relational algebra of Fegaras & Maier (paper Table 1). Normalized monoid
// comprehensions are lowered into DAGs of Scan, Select, Join, Unnest, Nest
// and Reduce operators; the algebraic rewriter then coalesces grouping
// operators that share a child and key (the paper's Plan B + Plan C →
// Plan BC), unifies structurally equal scans into a shared DAG, and fuses
// selections — the inter-operator optimizations of §5.
//
// Runtime convention: every operator produces *environment records* — records
// whose fields are the comprehension variables currently in scope (e.g. after
// scanning customer as c and unnesting tokens as t, rows look like
// {c: ..., t: ...}). Operator expressions reference those variables by name.
package algebra

import (
	"fmt"
	"strings"

	"cleandb/internal/monoid"
)

// Plan is a node of an algebraic plan DAG. Plans are immutable after
// construction; rewrites build new nodes. Nodes may be shared (same pointer
// reachable from several parents) — the physical level executes shared nodes
// once.
type Plan interface {
	fmt.Stringer
	// Binds lists the environment variables the node's output records carry.
	Binds() []string
	// Children returns the input plans.
	Children() []Plan
}

// Scan reads a named source from the catalog, binding each record to Alias.
type Scan struct {
	Source string
	Alias  string
}

// Binds implements Plan.
func (s *Scan) Binds() []string { return []string{s.Alias} }

// Children implements Plan.
func (s *Scan) Children() []Plan { return nil }

// String implements Plan.
func (s *Scan) String() string { return fmt.Sprintf("Scan(%s as %s)", s.Source, s.Alias) }

// Select filters environment records by Pred (σ_p in Table 1).
type Select struct {
	Child Plan
	Pred  monoid.Expr
}

// Binds implements Plan.
func (s *Select) Binds() []string { return s.Child.Binds() }

// Children implements Plan.
func (s *Select) Children() []Plan { return []Plan{s.Child} }

// String implements Plan.
func (s *Select) String() string { return fmt.Sprintf("Select[%s]", s.Pred) }

// Extend adds a computed binding Var := E to every record (a let that
// survived normalization).
type Extend struct {
	Child Plan
	Var   string
	E     monoid.Expr
}

// Binds implements Plan.
func (e *Extend) Binds() []string { return append(append([]string{}, e.Child.Binds()...), e.Var) }

// Children implements Plan.
func (e *Extend) Children() []Plan { return []Plan{e.Child} }

// String implements Plan.
func (e *Extend) String() string { return fmt.Sprintf("Extend[%s := %s]", e.Var, e.E) }

// Join combines two plans (⋈_p in Table 1). When LeftKeys/RightKeys are
// non-empty the join is an equi-join on those expressions; otherwise Theta
// holds the general predicate (nil means cross product). Outer emits
// unmatched left rows with null right bindings.
type Join struct {
	Left, Right Plan
	LeftKeys    []monoid.Expr
	RightKeys   []monoid.Expr
	Theta       monoid.Expr
	Outer       bool
	// ThetaSortVar/ThetaPrune, when set by the physical planner, carry
	// statistics hints for inequality joins (see physical package).
	Residual monoid.Expr // extra predicate applied after the join
}

// Binds implements Plan.
func (j *Join) Binds() []string {
	return append(append([]string{}, j.Left.Binds()...), j.Right.Binds()...)
}

// Children implements Plan.
func (j *Join) Children() []Plan { return []Plan{j.Left, j.Right} }

// String implements Plan.
func (j *Join) String() string {
	switch {
	case len(j.LeftKeys) > 0:
		ks := make([]string, len(j.LeftKeys))
		for i := range j.LeftKeys {
			ks[i] = j.LeftKeys[i].String() + "=" + j.RightKeys[i].String()
		}
		kind := "EquiJoin"
		if j.Outer {
			kind = "OuterEquiJoin"
		}
		return fmt.Sprintf("%s[%s]", kind, strings.Join(ks, ", "))
	case j.Theta != nil:
		kind := "ThetaJoin"
		if j.Outer {
			kind = "OuterThetaJoin"
		}
		return fmt.Sprintf("%s[%s]", kind, j.Theta)
	default:
		return "CrossJoin"
	}
}

// Unnest iterates the list denoted by Path (an expression over the child's
// bindings) and binds each element to As (µ in Table 1). Outer emits one row
// with a null binding when the list is empty.
type Unnest struct {
	Child Plan
	Path  monoid.Expr
	As    string
	Outer bool
}

// Binds implements Plan.
func (u *Unnest) Binds() []string { return append(append([]string{}, u.Child.Binds()...), u.As) }

// Children implements Plan.
func (u *Unnest) Children() []Plan { return []Plan{u.Child} }

// String implements Plan.
func (u *Unnest) String() string {
	kind := "Unnest"
	if u.Outer {
		kind = "OuterUnnest"
	}
	return fmt.Sprintf("%s[%s as %s]", kind, u.Path, u.As)
}

// Reduce folds the head expression of every input record through monoid M
// (∆ in Table 1). For collection monoids the output is a stream of head
// values bound to As; for primitive monoids it is a single value.
type Reduce struct {
	Child Plan
	M     monoid.Monoid
	Head  monoid.Expr
	As    string
}

// Binds implements Plan.
func (r *Reduce) Binds() []string { return []string{r.As} }

// Children implements Plan.
func (r *Reduce) Children() []Plan { return []Plan{r.Child} }

// String implements Plan.
func (r *Reduce) String() string { return fmt.Sprintf("Reduce[%s/%s]", r.M.Name(), r.Head) }

// Aggregate is one output of a Nest node.
type Aggregate struct {
	// Name is the output binding for this aggregate within the group record.
	Name string
	// M folds the Val expression over the group's members.
	M monoid.Monoid
	// Val is evaluated per member (over the child's bindings).
	Val monoid.Expr
}

// Nest groups the child's records (Γ in Table 1): records are grouped by the
// Key expressions; for each group one record {key: K, aggs...} is emitted,
// bound to As. Having, when non-nil, filters group records (evaluated over
// {As} with fields key and each aggregate name).
//
// A Nest with several Aggregates is the product of the paper's
// nest-coalescing rewrite: Plan B and Plan C of Figure 1 share one grouping
// pass and each reads its own aggregate.
type Nest struct {
	Child  Plan
	Keys   []monoid.Expr
	Aggs   []Aggregate
	As     string
	Having monoid.Expr
}

// Binds implements Plan.
func (n *Nest) Binds() []string { return []string{n.As} }

// Children implements Plan.
func (n *Nest) Children() []Plan { return []Plan{n.Child} }

// String implements Plan.
func (n *Nest) String() string {
	keys := make([]string, len(n.Keys))
	for i, k := range n.Keys {
		keys[i] = k.String()
	}
	aggs := make([]string, len(n.Aggs))
	for i, a := range n.Aggs {
		aggs[i] = fmt.Sprintf("%s=%s/%s", a.Name, a.M.Name(), a.Val)
	}
	s := fmt.Sprintf("Nest[key=(%s); %s]", strings.Join(keys, ","), strings.Join(aggs, ","))
	if n.Having != nil {
		s += fmt.Sprintf(" having %s", n.Having)
	}
	return s
}

// CombineAll full-outer-joins the violation outputs of several cleaning
// sub-plans on an entity key, emitting entities that appear in at least one
// input — the DAG root of the paper's "Overall Plan" in Figure 1.
type CombineAll struct {
	Inputs []Plan
	// Keys[i] extracts the entity key from input i's records.
	Keys []monoid.Expr
	// Names labels each input's contribution in the combined record.
	Names []string
}

// Binds implements Plan.
func (c *CombineAll) Binds() []string { return append([]string{"entity"}, c.Names...) }

// Children implements Plan.
func (c *CombineAll) Children() []Plan { return c.Inputs }

// String implements Plan.
func (c *CombineAll) String() string {
	return fmt.Sprintf("CombineAll[%s]", strings.Join(c.Names, " ⟗ "))
}

// Explain renders the plan DAG as an indented tree, annotating shared nodes.
func Explain(p Plan) string {
	var sb strings.Builder
	seen := map[Plan]int{}
	var walk func(p Plan, depth int)
	walk = func(p Plan, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		if id, ok := seen[p]; ok {
			sb.WriteString(fmt.Sprintf("^shared node #%d (%s)\n", id, p.String()))
			return
		}
		seen[p] = len(seen)
		sb.WriteString(p.String())
		sb.WriteByte('\n')
		for _, c := range p.Children() {
			walk(c, depth+1)
		}
	}
	walk(p, 0)
	return sb.String()
}

// ExprEqual reports structural equality of two expressions.
func ExprEqual(a, b monoid.Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.String() == b.String()
}

// PlanEqual reports structural equality of two plans (same operators,
// expressions and sources). Shared-node detection uses it to unify scans.
func PlanEqual(a, b Plan) bool {
	if a == b {
		return true
	}
	if fmt.Sprintf("%T", a) != fmt.Sprintf("%T", b) {
		return false
	}
	switch x := a.(type) {
	case *Scan:
		y := b.(*Scan)
		return x.Source == y.Source && x.Alias == y.Alias
	case *Select:
		y := b.(*Select)
		return ExprEqual(x.Pred, y.Pred) && PlanEqual(x.Child, y.Child)
	case *Extend:
		y := b.(*Extend)
		return x.Var == y.Var && ExprEqual(x.E, y.E) && PlanEqual(x.Child, y.Child)
	case *Unnest:
		y := b.(*Unnest)
		return x.As == y.As && x.Outer == y.Outer && ExprEqual(x.Path, y.Path) && PlanEqual(x.Child, y.Child)
	case *Join:
		y := b.(*Join)
		if len(x.LeftKeys) != len(y.LeftKeys) || x.Outer != y.Outer {
			return false
		}
		for i := range x.LeftKeys {
			if !ExprEqual(x.LeftKeys[i], y.LeftKeys[i]) || !ExprEqual(x.RightKeys[i], y.RightKeys[i]) {
				return false
			}
		}
		return ExprEqual(x.Theta, y.Theta) && ExprEqual(x.Residual, y.Residual) &&
			PlanEqual(x.Left, y.Left) && PlanEqual(x.Right, y.Right)
	case *Reduce:
		y := b.(*Reduce)
		return x.M.Name() == y.M.Name() && x.As == y.As && ExprEqual(x.Head, y.Head) && PlanEqual(x.Child, y.Child)
	case *Nest:
		y := b.(*Nest)
		if len(x.Keys) != len(y.Keys) || len(x.Aggs) != len(y.Aggs) || x.As != y.As {
			return false
		}
		for i := range x.Keys {
			if !ExprEqual(x.Keys[i], y.Keys[i]) {
				return false
			}
		}
		for i := range x.Aggs {
			if x.Aggs[i].Name != y.Aggs[i].Name || x.Aggs[i].M.Name() != y.Aggs[i].M.Name() || !ExprEqual(x.Aggs[i].Val, y.Aggs[i].Val) {
				return false
			}
		}
		return ExprEqual(x.Having, y.Having) && PlanEqual(x.Child, y.Child)
	case *CombineAll:
		y := b.(*CombineAll)
		if len(x.Inputs) != len(y.Inputs) {
			return false
		}
		for i := range x.Inputs {
			if x.Names[i] != y.Names[i] || !ExprEqual(x.Keys[i], y.Keys[i]) || !PlanEqual(x.Inputs[i], y.Inputs[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
