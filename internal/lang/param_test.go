package lang

import (
	"reflect"
	"strings"
	"testing"

	"cleandb/internal/monoid"
)

func TestParseParamsPositionalAndNamed(t *testing.T) {
	q, err := Parse(`SELECT c.name FROM customer c WHERE c.nationkey = ? AND c.name = :who AND c.age > ?`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"$1", "who", "$2"}
	if !reflect.DeepEqual(q.Params, want) {
		t.Fatalf("params = %v, want %v", q.Params, want)
	}
}

func TestParseParamsNamedDeduplicated(t *testing.T) {
	q, err := Parse(`SELECT c.name FROM customer c WHERE c.a = :x AND c.b = :X AND c.c = :y`)
	if err != nil {
		t.Fatal(err)
	}
	// :x and :X are the same key (lowercased) and appear once.
	want := []string{"x", "y"}
	if !reflect.DeepEqual(q.Params, want) {
		t.Fatalf("params = %v, want %v", q.Params, want)
	}
}

func TestParseParamRendersAsPlaceholder(t *testing.T) {
	q, err := Parse(`SELECT c.name FROM customer c WHERE c.nationkey = ? AND c.name = :who`)
	if err != nil {
		t.Fatal(err)
	}
	s := q.Where.String()
	for _, want := range []string{"?1", ":who"} {
		if !strings.Contains(s, want) {
			t.Fatalf("WHERE %q missing placeholder %q", s, want)
		}
	}
}

func TestLexBareColonFails(t *testing.T) {
	if _, err := Tokenize(`SELECT : FROM t`); err == nil {
		t.Fatal("bare ':' should fail to lex")
	}
}

func TestParseDedupThetaPlaceholder(t *testing.T) {
	q, err := Parse(`SELECT * FROM customer c DEDUP(attribute, LD, :theta, c.address, c.name)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Cleaning) != 1 {
		t.Fatalf("cleaning ops = %d", len(q.Cleaning))
	}
	op := q.Cleaning[0]
	if op.Metric != "LD" {
		t.Fatalf("metric = %q", op.Metric)
	}
	p, ok := op.ThetaExpr.(*monoid.Param)
	if !ok || p.Key != "theta" {
		t.Fatalf("theta expr = %v", op.ThetaExpr)
	}
	if len(op.Attrs) != 2 {
		t.Fatalf("attrs = %v", op.Attrs)
	}
	if !reflect.DeepEqual(q.Params, []string{"theta"}) {
		t.Fatalf("params = %v", q.Params)
	}
}

func TestDesugarDedupThetaPlaceholderSurvives(t *testing.T) {
	q, err := Parse(`SELECT * FROM customer c DEDUP(attribute, LD, ?, c.name)`)
	if err != nil {
		t.Fatal(err)
	}
	var d Desugarer
	tasks, err := d.Desugar(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 1 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	// The placeholder must survive de-sugaring into the similar() predicate.
	if !strings.Contains(tasks[0].Comp.String(), "?1") {
		t.Fatalf("comprehension lost the placeholder:\n%s", tasks[0].Comp)
	}
}
