package physical

import (
	"math/rand"
	"sort"
	"testing"

	"cleandb/internal/algebra"
	"cleandb/internal/engine"
	"cleandb/internal/monoid"
	"cleandb/internal/types"
)

var rowSchema = types.NewSchema("id", "grp", "val", "tags")

func row(id int64, grp string, val int64, tags ...string) types.Value {
	tv := make([]types.Value, len(tags))
	for i, s := range tags {
		tv[i] = types.String(s)
	}
	return types.NewRecord(rowSchema, []types.Value{
		types.Int(id), types.String(grp), types.Int(val), types.ListOf(tv),
	})
}

func testRows() []types.Value {
	return []types.Value{
		row(1, "a", 10, "x", "y"),
		row(2, "a", 20, "y"),
		row(3, "b", 30, "z"),
		row(4, "b", 30),
		row(5, "c", 5, "x"),
	}
}

func newExec(workers int) (*Executor, *engine.Context) {
	ctx := engine.NewContext(workers)
	catalog := map[string]*engine.Dataset{
		"rows":  engine.FromValues(ctx, testRows()),
		"other": engine.FromValues(ctx, testRows()[:2]),
	}
	return NewExecutor(ctx, catalog), ctx
}

// runPlan executes and returns canonical sorted keys of the result records.
func runPlan(t *testing.T, ex *Executor, p algebra.Plan) []string {
	t.Helper()
	d, err := ex.Exec(p)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	out := d.Collect()
	keys := make([]string, len(out))
	for i, v := range out {
		keys[i] = types.Key(v)
	}
	sort.Strings(keys)
	return keys
}

func TestExecScanSelect(t *testing.T) {
	ex, _ := newExec(4)
	p := &algebra.Select{
		Child: &algebra.Scan{Source: "rows", Alias: "r"},
		Pred:  monoid.Gt(monoid.F(monoid.V("r"), "val"), monoid.CInt(15)),
	}
	got := runPlan(t, ex, p)
	if len(got) != 3 {
		t.Fatalf("select kept %d rows, want 3", len(got))
	}
}

func TestExecUnknownSource(t *testing.T) {
	ex, _ := newExec(2)
	if _, err := ex.Exec(&algebra.Scan{Source: "nope", Alias: "x"}); err == nil {
		t.Fatal("unknown source must error")
	}
}

func TestExecUnitSource(t *testing.T) {
	ex, _ := newExec(2)
	p := &algebra.Reduce{
		Child: &algebra.Scan{Source: algebra.UnitSource, Alias: "$u"},
		M:     monoid.Bag,
		Head:  monoid.CInt(42),
		As:    "$out",
	}
	d, err := ex.Exec(p)
	if err != nil {
		t.Fatal(err)
	}
	out := d.Collect()
	if len(out) != 1 || out[0].Field("$out").Int() != 42 {
		t.Fatalf("unit reduce = %v", out)
	}
}

func TestExecExtend(t *testing.T) {
	ex, _ := newExec(2)
	p := &algebra.Extend{
		Child: &algebra.Scan{Source: "rows", Alias: "r"},
		Var:   "doubled",
		E:     &monoid.BinOp{Op: "*", L: monoid.F(monoid.V("r"), "val"), R: monoid.CInt(2)},
	}
	d, err := ex.Exec(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range d.Collect() {
		if v.Field("doubled").Int() != v.Field("r").Field("val").Int()*2 {
			t.Fatalf("extend wrong: %s", v)
		}
	}
}

func TestExecUnnestInnerAndOuter(t *testing.T) {
	ex, _ := newExec(3)
	inner := &algebra.Unnest{
		Child: &algebra.Scan{Source: "rows", Alias: "r"},
		Path:  monoid.F(monoid.V("r"), "tags"),
		As:    "t",
	}
	got := runPlan(t, ex, inner)
	if len(got) != 5 { // x,y / y / z / (none) / x
		t.Fatalf("inner unnest rows = %d, want 5", len(got))
	}
	outer := &algebra.Unnest{
		Child: &algebra.Scan{Source: "rows", Alias: "r"},
		Path:  monoid.F(monoid.V("r"), "tags"),
		As:    "t",
		Outer: true,
	}
	got = runPlan(t, ex, outer)
	if len(got) != 5+1 { // 4 tag rows + id4 with null + id3's z... recount: tags: r1:2, r2:1, r3:1, r4:0→1 null, r5:1 = 6
		t.Fatalf("outer unnest rows = %d, want 6", len(got))
	}
}

func TestExecEquiJoin(t *testing.T) {
	ex, _ := newExec(3)
	p := &algebra.Join{
		Left:      &algebra.Scan{Source: "rows", Alias: "l"},
		Right:     &algebra.Scan{Source: "other", Alias: "r"},
		LeftKeys:  []monoid.Expr{monoid.F(monoid.V("l"), "grp")},
		RightKeys: []monoid.Expr{monoid.F(monoid.V("r"), "grp")},
	}
	got := runPlan(t, ex, p)
	// other has two "a" rows; rows has two "a" rows → 4 matches.
	if len(got) != 4 {
		t.Fatalf("join rows = %d, want 4", len(got))
	}
}

func TestExecOuterJoinNullFill(t *testing.T) {
	ex, _ := newExec(3)
	p := &algebra.Join{
		Left:      &algebra.Scan{Source: "rows", Alias: "l"},
		Right:     &algebra.Scan{Source: "other", Alias: "r"},
		LeftKeys:  []monoid.Expr{monoid.F(monoid.V("l"), "grp")},
		RightKeys: []monoid.Expr{monoid.F(monoid.V("r"), "grp")},
		Outer:     true,
	}
	d, err := ex.Exec(p)
	if err != nil {
		t.Fatal(err)
	}
	nullRows := 0
	for _, v := range d.Collect() {
		if v.Field("r").IsNull() {
			nullRows++
		}
	}
	if nullRows != 3 { // b, b, c have no match
		t.Fatalf("outer join null rows = %d, want 3", nullRows)
	}
}

func TestExecThetaJoinStrategiesAgree(t *testing.T) {
	mk := func(cfg Config) []string {
		ex, _ := newExec(3)
		ex.Config = cfg
		p := &algebra.Join{
			Left:  &algebra.Scan{Source: "rows", Alias: "l"},
			Right: &algebra.Scan{Source: "other", Alias: "r"},
			Theta: monoid.Lt(monoid.F(monoid.V("l"), "val"), monoid.F(monoid.V("r"), "val")),
		}
		d, err := ex.Exec(p)
		if err != nil {
			t.Fatalf("theta exec: %v", err)
		}
		keys := make([]string, 0)
		for _, v := range d.Collect() {
			keys = append(keys, types.Key(v))
		}
		sort.Strings(keys)
		return keys
	}
	a := mk(Config{Theta: ThetaMBucket})
	b := mk(Config{Theta: ThetaCartesian})
	c := mk(Config{Theta: ThetaMinMax})
	if len(a) != len(b) || len(a) != len(c) {
		t.Fatalf("theta strategies disagree: %d/%d/%d", len(a), len(b), len(c))
	}
	for i := range a {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatal("theta strategies disagree on results")
		}
	}
}

func TestExecNestStrategiesAgree(t *testing.T) {
	mkPlan := func() *algebra.Nest {
		return &algebra.Nest{
			Child: &algebra.Scan{Source: "rows", Alias: "r"},
			Keys:  []monoid.Expr{monoid.F(monoid.V("r"), "grp")},
			Aggs:  []algebra.Aggregate{{Name: "group", M: monoid.Bag, Val: monoid.F(monoid.V("r"), "id")}},
			As:    "g",
		}
	}
	norm := func(cfg Config) []string {
		ex, _ := newExec(3)
		ex.Config = cfg
		d, err := ex.Exec(mkPlan())
		if err != nil {
			t.Fatal(err)
		}
		var keys []string
		for _, v := range d.Collect() {
			g := v.Field("g")
			ids := append([]types.Value(nil), g.Field("group").List()...)
			types.SortValues(ids)
			keys = append(keys, types.Key(g.Field("key"))+"→"+types.Key(types.ListOf(ids)))
		}
		sort.Strings(keys)
		return keys
	}
	a := norm(Config{Group: GroupAggregate})
	s := norm(Config{Group: GroupSort})
	h := norm(Config{Group: GroupHash})
	for i := range a {
		if a[i] != s[i] || a[i] != h[i] {
			t.Fatalf("nest strategies disagree:\n%v\n%v\n%v", a, s, h)
		}
	}
}

func TestExecNestMultipleAggregates(t *testing.T) {
	ex, _ := newExec(2)
	p := &algebra.Nest{
		Child: &algebra.Scan{Source: "rows", Alias: "r"},
		Keys:  []monoid.Expr{monoid.F(monoid.V("r"), "grp")},
		Aggs: []algebra.Aggregate{
			{Name: "n", M: monoid.Count, Val: monoid.CInt(1)},
			{Name: "total", M: monoid.Sum, Val: monoid.F(monoid.V("r"), "val")},
			{Name: "distinctVals", M: monoid.Set, Val: monoid.F(monoid.V("r"), "val")},
		},
		As: "g",
	}
	d, err := ex.Exec(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range d.Collect() {
		g := v.Field("g")
		if g.Field("key").Str() == "b" {
			if g.Field("n").Int() != 2 || g.Field("total").Int() != 60 {
				t.Fatalf("aggregates wrong for b: %s", g)
			}
			if len(g.Field("distinctVals").List()) != 1 {
				t.Fatalf("distinct vals wrong for b: %s", g)
			}
		}
	}
}

func TestExecNestHaving(t *testing.T) {
	ex, _ := newExec(2)
	p := &algebra.Nest{
		Child:  &algebra.Scan{Source: "rows", Alias: "r"},
		Keys:   []monoid.Expr{monoid.F(monoid.V("r"), "grp")},
		Aggs:   []algebra.Aggregate{{Name: "n", M: monoid.Count, Val: monoid.CInt(1)}},
		As:     "g",
		Having: monoid.Gt(monoid.F(monoid.V("g"), "n"), monoid.CInt(1)),
	}
	got := runPlan(t, ex, p)
	if len(got) != 2 { // groups a and b have 2 members; c has 1
		t.Fatalf("having kept %d groups, want 2", len(got))
	}
}

func TestExecReducePrimitive(t *testing.T) {
	ex, _ := newExec(3)
	p := &algebra.Reduce{
		Child: &algebra.Scan{Source: "rows", Alias: "r"},
		M:     monoid.Sum,
		Head:  monoid.F(monoid.V("r"), "val"),
		As:    "$out",
	}
	d, err := ex.Exec(p)
	if err != nil {
		t.Fatal(err)
	}
	out := d.Collect()
	if len(out) != 1 || out[0].Field("$out").Int() != 95 {
		t.Fatalf("sum reduce = %v", out)
	}
}

func TestExecReduceSetDedups(t *testing.T) {
	ex, _ := newExec(3)
	p := &algebra.Reduce{
		Child: &algebra.Scan{Source: "rows", Alias: "r"},
		M:     monoid.Set,
		Head:  monoid.F(monoid.V("r"), "grp"),
		As:    "$out",
	}
	d, err := ex.Exec(p)
	if err != nil {
		t.Fatal(err)
	}
	if n := d.Count(); n != 3 {
		t.Fatalf("set reduce = %d rows, want 3 distinct groups", n)
	}
}

func TestExecMemoizesSharedNodes(t *testing.T) {
	ex, ctx := newExec(2)
	scan := &algebra.Scan{Source: "rows", Alias: "r"}
	p1 := &algebra.Select{Child: scan, Pred: monoid.CBool(true)}
	p2 := &algebra.Select{Child: scan, Pred: monoid.CBool(false)}
	if _, err := ex.Exec(p1); err != nil {
		t.Fatal(err)
	}
	scanStages := countStages(ctx, "scan:rows")
	if _, err := ex.Exec(p2); err != nil {
		t.Fatal(err)
	}
	if got := countStages(ctx, "scan:rows"); got != scanStages {
		t.Fatalf("shared scan executed twice: %d → %d stages", scanStages, got)
	}
}

func countStages(ctx *engine.Context, name string) int {
	n := 0
	for _, s := range ctx.Metrics().Stages() {
		if s.Name == name {
			n++
		}
	}
	return n
}

func TestExecCombineAll(t *testing.T) {
	ex, _ := newExec(2)
	scan := &algebra.Scan{Source: "rows", Alias: "r"}
	a := &algebra.Select{Child: scan, Pred: monoid.Eq(monoid.F(monoid.V("r"), "grp"), monoid.CStr("a"))}
	b := &algebra.Select{Child: scan, Pred: monoid.Gt(monoid.F(monoid.V("r"), "val"), monoid.CInt(25))}
	p := &algebra.CombineAll{
		Inputs: []algebra.Plan{a, b},
		Keys: []monoid.Expr{
			monoid.F(monoid.V("r"), "grp"),
			monoid.F(monoid.V("r"), "grp"),
		},
		Names: []string{"isA", "isBig"},
	}
	d, err := ex.Exec(p)
	if err != nil {
		t.Fatal(err)
	}
	byEntity := map[string]types.Value{}
	for _, v := range d.Collect() {
		byEntity[v.Field("entity").Str()] = v
	}
	if len(byEntity) != 2 { // entities a (from isA) and b (from isBig)
		t.Fatalf("combined entities = %v", byEntity)
	}
	if n := len(byEntity["a"].Field("isA").List()); n != 2 {
		t.Fatalf("entity a should have 2 isA violations, got %d", n)
	}
	if n := len(byEntity["b"].Field("isBig").List()); n != 2 {
		t.Fatalf("entity b should have 2 isBig violations, got %d", n)
	}
}

// TestPhysicalAgreesWithEvaluator is the level-crossing property test: for
// random comprehensions, lowering + physical execution produces exactly the
// evaluator's result.
func TestPhysicalAgreesWithEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	sources := map[string][]types.Value{}
	mkRows := func(n int) []types.Value {
		out := make([]types.Value, n)
		for i := range out {
			out[i] = row(int64(i), string(rune('a'+rng.Intn(3))), int64(rng.Intn(50)), "t")
		}
		return out
	}
	sources["rows"] = mkRows(40)
	sources["other"] = mkRows(15)

	lowerer := &algebra.Lowerer{IsSource: func(name string) bool {
		_, ok := sources[name]
		return ok || name == algebra.UnitSource
	}}
	ev := monoid.NewEvaluator()
	ev.Sources = func(name string) (types.Value, bool) {
		rows, ok := sources[name]
		if !ok {
			return types.Null(), false
		}
		return types.ListOf(rows), true
	}

	for trial := 0; trial < 100; trial++ {
		comp := randomQueryComp(rng)
		want, err := ev.EvalComprehension(comp, nil)
		if err != nil {
			t.Fatalf("eval: %v (%s)", err, comp)
		}
		plan, err := lowerer.Lower(comp)
		if err != nil {
			t.Fatalf("lower: %v (%s)", err, comp)
		}
		ctx := engine.NewContext(1 + rng.Intn(5))
		catalog := map[string]*engine.Dataset{}
		for name, rows := range sources {
			catalog[name] = engine.FromValues(ctx, rows)
		}
		ex := NewExecutor(ctx, catalog)
		d, err := ex.Exec(plan)
		if err != nil {
			t.Fatalf("exec: %v\n%s", err, algebra.Explain(plan))
		}
		var got []types.Value
		for _, v := range d.Collect() {
			got = append(got, v.Field("$out"))
		}
		wantList := append([]types.Value(nil), want.List()...)
		types.SortValues(wantList)
		types.SortValues(got)
		if types.Key(types.ListOf(wantList)) != types.Key(types.ListOf(got)) {
			t.Fatalf("physical execution disagrees with evaluator for\n%s\nwant %s\ngot  %s\nplan:\n%s",
				comp, types.ListOf(wantList), types.ListOf(got), algebra.Explain(plan))
		}
	}
}

// randomQueryComp builds random bag/set comprehensions of the query shapes
// the lowering supports: scans, joins via equality predicates, filters,
// unnests of list fields.
func randomQueryComp(rng *rand.Rand) *monoid.Comprehension {
	m := []monoid.Monoid{monoid.Bag, monoid.Set}[rng.Intn(2)]
	quals := []monoid.Qual{
		&monoid.Generator{Var: "x", Source: monoid.V("rows")},
	}
	vars := []string{"x"}
	if rng.Intn(2) == 0 {
		quals = append(quals, &monoid.Generator{Var: "y", Source: monoid.V("other")})
		quals = append(quals, &monoid.Pred{Cond: monoid.Eq(
			monoid.F(monoid.V("x"), "grp"), monoid.F(monoid.V("y"), "grp"))})
		vars = append(vars, "y")
	}
	if rng.Intn(2) == 0 {
		quals = append(quals, &monoid.Pred{Cond: monoid.Gt(
			monoid.F(monoid.V("x"), "val"), monoid.CInt(int64(rng.Intn(40))))})
	}
	if rng.Intn(3) == 0 {
		quals = append(quals, &monoid.Generator{Var: "tag", Source: monoid.F(monoid.V("x"), "tags")})
		vars = append(vars, "tag")
	}
	// Head projects a record over some bound vars.
	fields := []monoid.Expr{monoid.F(monoid.V("x"), "id")}
	names := []string{"id"}
	if len(vars) > 1 && rng.Intn(2) == 0 {
		v := vars[1+rng.Intn(len(vars)-1)]
		fields = append(fields, monoid.V(v))
		names = append(names, "extra")
	}
	return &monoid.Comprehension{
		M:     m,
		Head:  &monoid.RecordCtor{Names: names, Fields: fields},
		Quals: quals,
	}
}
