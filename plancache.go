package cleandb

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// CacheStats is a snapshot of the DB's plan-cache counters. Hits and Misses
// count lookups since Open; Entries is the current number of cached plans.
type CacheStats struct {
	Hits    int64
	Misses  int64
	Entries int
}

// planCache is an LRU cache of prepared statements keyed by normalized query
// text plus the strategy configuration and catalog epoch. It is safe for
// concurrent use; cached values must themselves be safe to share (Prepared
// plans are immutable after Prepare).
type planCache[V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	index map[string]*list.Element
	// gen increments on purge; a put whose planning started before the purge
	// carries the old generation and is dropped, so stale-epoch entries can
	// never re-enter after a catalog change and pin dead snapshots.
	gen int64

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry[V any] struct {
	key string
	val V
}

func newPlanCache[V any](capacity int) *planCache[V] {
	if capacity <= 0 {
		return nil
	}
	return &planCache[V]{cap: capacity, ll: list.New(), index: map[string]*list.Element{}}
}

// get returns the cached value for key, marking it most recently used.
func (c *planCache[V]) get(key string) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		c.misses.Add(1)
		return zero, false
	}
	c.hits.Add(1)
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry[V]).val, true
}

// generation returns the current purge generation; capture it before
// planning and pass it to put.
func (c *planCache[V]) generation() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// put inserts (or refreshes) key, evicting the least recently used entry
// beyond capacity. A put from a generation older than the last purge is
// dropped: its key embeds a dead catalog epoch and could never hit again.
func (c *planCache[V]) put(key string, val V, gen int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		return
	}
	if el, ok := c.index[key]; ok {
		el.Value.(*cacheEntry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.index[key] = c.ll.PushFront(&cacheEntry[V]{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.index, oldest.Value.(*cacheEntry[V]).key)
	}
}

// purge drops every entry and advances the generation, keeping the hit/miss
// counters.
func (c *planCache[V]) purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.ll.Init()
	clear(c.index)
	c.gen++
	c.mu.Unlock()
}

// stats snapshots the counters.
func (c *planCache[V]) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	n := c.ll.Len()
	c.mu.Unlock()
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: n}
}
