package dist

// Cluster equivalence suite: a 3-worker loopback cluster must answer the full
// columnar-equivalence query matrix identically to a single-process DB over
// the same files — same rows, same task rows, same repairs, and the same cost
// metrics, because the SPMD execution model makes every node's run a replica
// of the single-process one. The suite also pins the failure semantics: a
// worker killed mid-query is evicted and its slots re-execute elsewhere, a
// client disconnect cancels the remote fragments, and neither path leaks
// goroutines.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"cleandb"
	"cleandb/internal/datagen"
	"cleandb/internal/physical"
	"cleandb/internal/types"
)

// --- shared fixtures ---------------------------------------------------------

// writeEquivSources renders the equivalence relations to CSV files: cluster
// sources must be file-backed so the coordinator can ship them by path.
func writeEquivSources(tb testing.TB, lineitemRows int) map[string]string {
	tb.Helper()
	dir := tb.TempDir()
	cust := datagen.GenCustomer(datagen.CustomerConfig{Rows: 60, Seed: 7})
	line := datagen.GenLineitem(datagen.LineitemConfig{Rows: lineitemRows, NoiseDiscount: true, Seed: 11})
	dictSchema := types.NewSchema("term")
	var dict []types.Value
	seen := map[string]bool{}
	for _, r := range cust.Rows {
		if n := r.Field("name").Str(); !seen[n] {
			seen[n] = true
			dict = append(dict, types.NewRecord(dictSchema, []types.Value{types.String(n)}))
		}
	}
	paths := make(map[string]string)
	for name, rows := range map[string][]types.Value{
		"customer": cust.Rows, "lineitem": line, "dictionary": dict,
	} {
		path := dir + "/" + name + ".csv"
		db := cleandb.Open()
		db.RegisterRows(name, rows)
		snk, err := cleandb.SinkFromPath(path)
		if err != nil {
			tb.Fatal(err)
		}
		if _, err := db.ExecuteTo(context.Background(), "SELECT * FROM "+name+" x", snk); err != nil {
			tb.Fatalf("write %s: %v", name, err)
		}
		paths[name] = path
	}
	return paths
}

var clusterQueries = []struct {
	name    string
	query   string
	repairs string
}{
	{name: "filter_project", query: `SELECT c.name AS n, c.nationkey AS k FROM customer c WHERE c.nationkey < 12`},
	{name: "filter_string_eq", query: `SELECT c.custkey AS k FROM customer c WHERE c.address = '1 oak st'`},
	{name: "equi_join", query: `SELECT c.name AS n, o.orderkey AS ok FROM customer c, lineitem o WHERE c.custkey = o.suppkey and o.discount > 0.05`},
	{name: "fd", query: `SELECT * FROM customer c FD(c.address, prefix(c.phone))`},
	{name: "dedup", query: `SELECT * FROM customer c DEDUP(attribute, LD, 0.8, c.address, c.name, c.phone)`},
	{name: "term_validation", query: `SELECT * FROM customer c, dictionary d CLUSTER BY(token_filtering, LD, 0.7, c.name)`},
	{
		name: "denial_repair",
		query: `SELECT * FROM lineitem t1
DENIAL(t2, t1.extendedprice < t2.extendedprice and t1.discount > t2.discount and t1.extendedprice < 905)
REPAIR(t1.discount)`,
		repairs: "lineitem",
	},
	{
		name: "unified",
		query: `SELECT * FROM customer c
FD(c.address, prefix(c.phone))
FD(c.address, c.nationkey)
DEDUP(attribute, LD, 0.8, c.address, c.name, c.phone)`,
	},
}

// --- loopback cluster --------------------------------------------------------

type testWorker struct {
	id  string
	wk  *Worker
	srv *httptest.Server
}

type testCluster struct {
	tb       testing.TB
	db       *cleandb.DB // coordinator's DB; its results are the answers
	coord    *Coordinator
	coordSrv *httptest.Server
	workers  []*testWorker
	// onExchange, when set, observes every exchange submission before the
	// coordinator handles it — the deterministic hook the failure tests use
	// to kill a worker or drop the client at a known point mid-query.
	onExchange atomic.Pointer[func(hdr exchangeHeader)]
}

// newTestCluster builds an in-process loopback cluster: a coordinator DB over
// the file sources, n workers with empty catalogs (sources arrive shipped by
// path, as in production), everything over httptest loopback HTTP. Custody
// defaults to partitioned, as in production; newTestClusterCustody pins a
// mode explicitly.
func newTestCluster(tb testing.TB, n int, paths map[string]string, opts ...cleandb.Option) *testCluster {
	tb.Helper()
	return newTestClusterCustody(tb, n, paths, "", opts...)
}

func newTestClusterCustody(tb testing.TB, n int, paths map[string]string, custody string, opts ...cleandb.Option) *testCluster {
	tb.Helper()
	db := cleandb.Open(opts...)
	for name, p := range paths {
		if err := db.RegisterFile(name, p); err != nil {
			tb.Fatal(err)
		}
	}
	c := &testCluster{tb: tb, db: db}
	c.coord = NewCoordinator(db, Config{
		ExchangeTimeout: 5 * time.Second,
		ProbeInterval:   time.Second,
		FragmentGrace:   5 * time.Second,
		Custody:         custody,
	})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/register", c.coord.HandleRegister)
	mux.HandleFunc("POST /v1/cluster/exchange", func(w http.ResponseWriter, r *http.Request) {
		if hook := c.onExchange.Load(); hook != nil {
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if hdr, _, err := decodeExchangeRequest(body); err == nil {
				(*hook)(hdr)
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
		c.coord.HandleExchange(w, r)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	c.coordSrv = httptest.NewServer(mux)
	c.coord.SetAdvertiseURL(c.coordSrv.URL)

	for i := 0; i < n; i++ {
		wk := NewWorker(cleandb.Open(opts...))
		wmux := http.NewServeMux()
		wmux.HandleFunc("POST /v1/cluster/fragment", wk.HandleFragment)
		wmux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
		})
		srv := httptest.NewServer(wmux)
		id := c.coord.register(srv.URL)
		c.workers = append(c.workers, &testWorker{id: id, wk: wk, srv: srv})
	}
	tb.Cleanup(c.close)
	return c
}

func (c *testCluster) close() {
	c.coord.Close()
	c.coordSrv.Close()
	for _, w := range c.workers {
		w.srv.Close()
	}
}

// run executes one query distributed: a session over the live workers, the
// coordinator's own execution with its exchange seat attached, then the
// fragment results.
func (c *testCluster) run(ctx context.Context, query string) (*cleandb.Result, []FragmentResult, error) {
	c.tb.Helper()
	sess := c.coord.StartSession(ctx, query, nil)
	if sess == nil {
		c.tb.Fatal("StartSession declined: no live workers")
	}
	res, err := c.db.QueryContext(sess.Attach(ctx), query)
	frags := sess.Finish()
	if err != nil {
		return nil, frags, err
	}
	return res, frags, nil
}

func (c *testCluster) closeIdle() {
	c.coord.client.CloseIdleConnections()
	c.coord.probeClient.CloseIdleConnections()
	for _, w := range c.workers {
		w.wk.client.CloseIdleConnections()
	}
}

// settle waits for the goroutine count to return to (near) its baseline.
func (c *testCluster) settle(before int) {
	c.tb.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		c.closeIdle()
		if runtime.NumGoroutine() <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			c.tb.Fatalf("goroutines leaked: baseline %d, now %d", before, runtime.NumGoroutine())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// --- equivalence helpers -----------------------------------------------------

func canon(rows []types.Value) []string {
	out := make([]string, len(rows))
	for i, v := range rows {
		out[i] = types.Key(v)
	}
	return out
}

func diffRows(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: cluster %d rows vs single-process %d rows", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d differs:\n cluster:  %s\n single:   %s", label, i, got[i], want[i])
		}
	}
}

// checkClusterEquiv runs one query on the cluster and on the reference DB and
// asserts identical rows, task rows, repairs and cost metrics.
func checkClusterEquiv(t *testing.T, c *testCluster, single *cleandb.DB, label, query, repairs string) []FragmentResult {
	t.Helper()
	resC, frags, errC := c.run(context.Background(), query)
	resS, errS := single.Query(query)
	if (errC == nil) != (errS == nil) {
		t.Fatalf("%s: cluster err=%v, single err=%v", label, errC, errS)
	}
	if errC != nil {
		t.Fatalf("%s: %v", label, errC)
	}
	diffRows(t, label+"/rows", canon(resC.Rows()), canon(resS.Rows()))
	for _, task := range resS.TaskNames() {
		gotC, okC := resC.TaskRowsOK(task)
		gotS, _ := resS.TaskRowsOK(task)
		if !okC {
			t.Fatalf("%s: task %q missing from cluster result", label, task)
		}
		diffRows(t, label+"/task:"+task, canon(gotC), canon(gotS))
	}
	if repairs != "" {
		diffRows(t, label+"/repaired",
			canon(resC.RepairedRows(repairs)), canon(resS.RepairedRows(repairs)))
	}
	mc, ms := resC.Metrics(), resS.Metrics()
	if mc.SimTicks != ms.SimTicks || mc.Comparisons != ms.Comparisons ||
		mc.ShuffledRecords != ms.ShuffledRecords || mc.ShuffledBytes != ms.ShuffledBytes {
		t.Fatalf("%s: metrics diverge:\n cluster: ticks=%d cmp=%d recs=%d bytes=%d\n single:  ticks=%d cmp=%d recs=%d bytes=%d",
			label,
			mc.SimTicks, mc.Comparisons, mc.ShuffledRecords, mc.ShuffledBytes,
			ms.SimTicks, ms.Comparisons, ms.ShuffledRecords, ms.ShuffledBytes)
	}
	return frags
}

// TestClusterEquivalence is the acceptance property: a 3-worker cluster
// answers the whole query matrix identically to a single process, across the
// pinned strategy matrix. SPMD also implies every worker's fragment reports
// the *same* SimTicks and Comparisons as the single-process run — each node
// replays the full cost model — which the fragment results pin too.
func TestClusterEquivalence(t *testing.T) {
	paths := writeEquivSources(t, 150)
	strategies := []struct {
		name  string
		group physical.GroupStrategy
		theta physical.ThetaStrategy
	}{
		{"aggregate_mbucket", physical.GroupAggregate, physical.ThetaMBucket},
		{"hash_cartesian", physical.GroupHash, physical.ThetaCartesian},
		{"sort_mbucket", physical.GroupSort, physical.ThetaMBucket},
	}
	for _, st := range strategies {
		opts := []cleandb.Option{
			cleandb.WithWorkers(4),
			cleandb.WithGroupStrategy(st.group), cleandb.WithThetaStrategy(st.theta),
		}
		c := newTestCluster(t, 3, paths, opts...)
		single := cleandb.Open(opts...)
		for name, p := range paths {
			if err := single.RegisterFile(name, p); err != nil {
				t.Fatal(err)
			}
		}
		for _, q := range clusterQueries {
			label := st.name + "/" + q.name
			frags := checkClusterEquiv(t, c, single, label, q.query, q.repairs)
			if len(frags) != 3 {
				t.Fatalf("%s: %d fragment results, want 3", label, len(frags))
			}
			ref, _ := single.Query(q.query)
			for _, f := range frags {
				if f.Err != "" {
					t.Fatalf("%s: fragment on %s failed: %s", label, f.Worker, f.Err)
				}
				if m := ref.Metrics(); f.SimTicks != m.SimTicks || f.Comparisons != m.Comparisons {
					t.Fatalf("%s: fragment on %s reports ticks=%d cmp=%d, single-process ticks=%d cmp=%d",
						label, f.Worker, f.SimTicks, f.Comparisons, m.SimTicks, m.Comparisons)
				}
			}
		}
		c.close()
	}
}

// TestClusterWorkerKillMidQuery kills one worker at its first exchange of a
// repair query — after it joined the session, shipped sources and started
// executing — and requires the query to finish correctly anyway, with the
// victim evicted and its slots re-executed by the surviving members.
func TestClusterWorkerKillMidQuery(t *testing.T) {
	paths := writeEquivSources(t, 150)
	opts := []cleandb.Option{cleandb.WithWorkers(4)}
	c := newTestCluster(t, 3, paths, opts...)
	single := cleandb.Open(opts...)
	for name, p := range paths {
		if err := single.RegisterFile(name, p); err != nil {
			t.Fatal(err)
		}
	}
	q := clusterQueries[6] // denial_repair: many masked stages across repair rounds
	victim := c.workers[2]
	var killed atomic.Bool
	hook := func(hdr exchangeHeader) {
		if hdr.Self == victim.id && killed.CompareAndSwap(false, true) {
			// Severing the worker's connections kills the coordinator's
			// in-flight fragment POST: the eager eviction path.
			victim.srv.CloseClientConnections()
		}
	}
	c.onExchange.Store(&hook)

	frags := checkClusterEquiv(t, c, single, "kill/"+q.name, q.query, q.repairs)
	if !killed.Load() {
		t.Fatal("kill hook never fired; query had no exchange from the victim")
	}
	var sawVictim bool
	for _, f := range frags {
		if f.Worker == victim.id {
			sawVictim = true
			if f.Err == "" {
				t.Fatalf("victim %s reported success after its connections were severed", victim.id)
			}
		}
	}
	if !sawVictim {
		t.Fatalf("no fragment result for victim %s: %+v", victim.id, frags)
	}
}

// TestClusterLameWorker registers a worker whose server is already gone: the
// very first fragment POST fails, the member is evicted before any barrier
// forms, and the query still answers correctly.
func TestClusterLameWorker(t *testing.T) {
	paths := writeEquivSources(t, 150)
	opts := []cleandb.Option{cleandb.WithWorkers(4)}
	c := newTestCluster(t, 2, paths, opts...)
	lame := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	lameID := c.coord.register(lame.URL)
	lame.Close()
	single := cleandb.Open(opts...)
	for name, p := range paths {
		if err := single.RegisterFile(name, p); err != nil {
			t.Fatal(err)
		}
	}
	q := clusterQueries[6]
	res, frags, err := c.run(context.Background(), q.query)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := single.Query(q.query)
	diffRows(t, "lame/rows", canon(res.Rows()), canon(ref.Rows()))
	var lameErr bool
	for _, f := range frags {
		if f.Worker == lameID && f.Err != "" {
			lameErr = true
		}
	}
	if !lameErr {
		t.Fatalf("lame worker %s reported no error: %+v", lameID, frags)
	}
}

// TestClusterClientDisconnect drops the client (cancels the query context) at
// the first exchange: the coordinator's query must fail with the
// cancellation, every worker fragment must abort rather than hang, and the
// cluster must settle back to its goroutine baseline.
func TestClusterClientDisconnect(t *testing.T) {
	paths := writeEquivSources(t, 150)
	c := newTestCluster(t, 3, paths, cleandb.WithWorkers(4))
	// Warm up: one full distributed query establishes every connection pool,
	// so the baseline below includes the steady-state transport goroutines.
	if _, _, err := c.run(context.Background(), clusterQueries[2].query); err != nil {
		t.Fatal(err)
	}
	c.closeIdle()
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hook := func(exchangeHeader) { cancel() }
	c.onExchange.Store(&hook)

	q := clusterQueries[6]
	sess := c.coord.StartSession(ctx, q.query, nil)
	if sess == nil {
		t.Fatal("StartSession declined")
	}
	_, err := c.db.QueryContext(sess.Attach(ctx), q.query)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("coordinator query err = %v, want context.Canceled", err)
	}
	frags := sess.Finish()
	for _, f := range frags {
		if f.Err == "" {
			t.Fatalf("fragment on %s completed despite client disconnect", f.Worker)
		}
	}
	c.onExchange.Store(nil)
	c.settle(before)
}

// TestClusterHealthzStatus pins the coordinator's liveness report: per-worker
// health flips when a worker dies, and the consistent-placement partition
// custody always covers the loaded catalog exactly.
func TestClusterHealthzStatus(t *testing.T) {
	paths := writeEquivSources(t, 150)
	c := newTestCluster(t, 2, paths, cleandb.WithWorkers(4))
	// Load the catalog by running one query.
	if _, _, err := c.run(context.Background(), clusterQueries[0].query); err != nil {
		t.Fatal(err)
	}
	var total int
	for _, si := range c.db.SourceInfos() {
		total += si.Partitions
	}
	if total == 0 {
		t.Fatal("no partitions loaded")
	}
	sum := func(st ClusterStatus) int {
		n := st.CoordinatorPartitions
		for _, w := range st.Workers {
			n += w.Partitions
		}
		return n
	}
	st := c.coord.Status()
	if len(st.Workers) != 2 || !st.Workers[0].Alive || !st.Workers[1].Alive {
		t.Fatalf("workers not all alive: %+v", st.Workers)
	}
	if len(st.Members) != 3 || st.Members[0] != coordID {
		t.Fatalf("members = %v", st.Members)
	}
	if got := sum(st); got != total {
		t.Fatalf("placement covers %d partitions, catalog has %d", got, total)
	}

	// Kill a worker; the probe must flip it to dead and custody must re-plan
	// over the survivors, still covering the whole catalog.
	c.workers[1].srv.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st = c.coord.Status()
		if !st.Workers[1].Alive {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("probe never marked the dead worker down")
		}
		time.Sleep(25 * time.Millisecond)
	}
	if len(st.Members) != 2 {
		t.Fatalf("members after death = %v", st.Members)
	}
	if st.Workers[1].Partitions != 0 {
		t.Fatalf("dead worker still owns %d partitions", st.Workers[1].Partitions)
	}
	if got := sum(st); got != total {
		t.Fatalf("placement after death covers %d partitions, catalog has %d", got, total)
	}
}

// --- unit tests: placement, hub, wire body -----------------------------------

func TestPlacementCoversSlots(t *testing.T) {
	members := []string{"c0", "w0001", "w0002", "w0003"}
	for _, n := range []int{0, 1, 7, 64} {
		seen := make([]string, n)
		for _, m := range members {
			for _, sl := range ownedSlots("003/theta", n, m, members) {
				if seen[sl] != "" {
					t.Fatalf("slot %d owned by both %s and %s", sl, seen[sl], m)
				}
				seen[sl] = m
			}
		}
		for sl, m := range seen {
			if m == "" {
				t.Fatalf("slot %d/%d unowned", sl, n)
			}
		}
	}
}

// TestPlacementStability pins the rendezvous property: removing one member
// only moves the keys that member owned.
func TestPlacementStability(t *testing.T) {
	members := []string{"c0", "w0001", "w0002", "w0003"}
	survivors := []string{"c0", "w0001", "w0003"}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("part/lineitem/%d", i)
		before := owner(key, members)
		after := owner(key, survivors)
		if before != "w0002" && after != before {
			t.Fatalf("key %s moved %s -> %s though its owner survived", key, before, after)
		}
		if before == "w0002" && after == "w0002" {
			t.Fatalf("key %s still owned by removed member", key)
		}
	}
}

func frameSet(slots []int) map[int][]byte {
	m := make(map[int][]byte, len(slots))
	for _, sl := range slots {
		m[sl] = []byte(fmt.Sprintf("frame-%d", sl))
	}
	return m
}

// TestHubSweepReassignsDeadMember drives the timeout backstop: a member that
// never shows up is swept, and its slots land on the coordinator, which is
// woken with extras and completes the stage alone.
func TestHubSweepReassignsDeadMember(t *testing.T) {
	members := []string{"c0", "w0001"}
	s := newHubSession(context.Background(), "s1", members, 50*time.Millisecond)
	defer s.close()
	const stage, n = "001/theta", 8
	mine := ownedSlots(stage, n, "c0", members)
	for {
		full, extra, err := s.gather(context.Background(), "c0", stage, n, frameSet(mine))
		if err != nil {
			t.Fatal(err)
		}
		if len(extra) > 0 {
			mine = extra
			continue
		}
		for sl, f := range full {
			if want := fmt.Sprintf("frame-%d", sl); string(f) != want {
				t.Fatalf("slot %d frame = %q, want %q", sl, f, want)
			}
		}
		break
	}
	if d := s.deadMembers(); len(d) != 1 || d[0] != "w0001" {
		t.Fatalf("dead = %v, want [w0001]", d)
	}
}

// TestHubEvictsParkedMember: a parked member whose eviction arrives (failed
// fragment RPC) is woken with the eviction error, not left hanging.
func TestHubEvictsParkedMember(t *testing.T) {
	members := []string{"c0", "w0001"}
	s := newHubSession(context.Background(), "s1", members, time.Minute)
	defer s.close()
	const n = 8
	// Pick a stage where both members own slots, so w0001's full submission
	// leaves the stage incomplete and parks it.
	var stage string
	for i := 1; stage == ""; i++ {
		cand := fmt.Sprintf("%03d/theta", i)
		if len(ownedSlots(cand, n, "c0", members)) > 0 && len(ownedSlots(cand, n, "w0001", members)) > 0 {
			stage = cand
		}
	}
	errc := make(chan error, 1)
	go func() {
		_, _, err := s.gather(context.Background(), "w0001", stage, n,
			frameSet(ownedSlots(stage, n, "w0001", members)))
		errc <- err
	}()
	// Wait until the worker is parked, then evict it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		parked := s.stages[stage] != nil && s.stages[stage].waiters["w0001"] != nil
		s.mu.Unlock()
		if parked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never parked")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.markDead("w0001")
	if err := <-errc; !errors.Is(err, errEvicted) {
		t.Fatalf("parked member got %v, want errEvicted", err)
	}
}

func TestHubSlotCountMismatch(t *testing.T) {
	members := []string{"c0", "w0001"}
	s := newHubSession(context.Background(), "s1", members, time.Minute)
	defer s.close()
	if _, _, _, err := s.submit("c0", "001/x", 4, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.submit("w0001", "001/x", 5, nil); err == nil {
		t.Fatal("diverging slot count accepted")
	}
}

func TestWireBodyRoundTrip(t *testing.T) {
	hdr := exchangeHeader{Session: "s000001", Self: "w0002", Stage: "017/theta", N: 9}
	frames := map[int][]byte{0: []byte("alpha"), 3: {}, 8: []byte("omega")}
	body, err := encodeExchangeRequest(hdr, frames)
	if err != nil {
		t.Fatal(err)
	}
	gotHdr, gotFrames, err := decodeExchangeRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	if gotHdr != hdr {
		t.Fatalf("header = %+v, want %+v", gotHdr, hdr)
	}
	if len(gotFrames) != len(frames) {
		t.Fatalf("frames = %d, want %d", len(gotFrames), len(frames))
	}
	for sl, f := range frames {
		if !bytes.Equal(gotFrames[sl], f) {
			t.Fatalf("slot %d = %q, want %q", sl, gotFrames[sl], f)
		}
	}
	// Truncations error, never panic.
	for i := 0; i < len(body); i++ {
		if _, _, err := decodeExchangeRequest(body[:i]); err == nil {
			t.Fatalf("truncated request body of %d bytes decoded", i)
		}
	}

	for _, rep := range []exchangeReply{
		{Status: "full"},
		{Status: "extra", Extra: []int{2, 5}},
	} {
		var fr [][]byte
		if rep.Status == "full" {
			fr = [][]byte{[]byte("a"), nil, []byte("ccc")}
		}
		body, err := encodeExchangeReply(rep, fr)
		if err != nil {
			t.Fatal(err)
		}
		gotRep, gotFr, err := decodeExchangeReply(body)
		if err != nil {
			t.Fatal(err)
		}
		if gotRep.Status != rep.Status || len(gotRep.Extra) != len(rep.Extra) {
			t.Fatalf("reply = %+v, want %+v", gotRep, rep)
		}
		if rep.Status == "full" && len(gotFr) != len(fr) {
			t.Fatalf("reply frames = %d, want %d", len(gotFr), len(fr))
		}
	}
}

// --- benchmark ---------------------------------------------------------------

// BenchmarkDistributedThetaJoin measures the distributed theta join over
// loopback: the same join-heavy denial query against 1 vs 3 in-process
// workers. Every member shares this machine's cores, so wall time mostly
// prices the exchange overhead; the scaling that worker count buys shows in
// node-slots/op — the masked join slots the coordinator executes itself,
// which placement divides by the member count (on a real cluster that
// division is the wall-clock win).
func BenchmarkDistributedThetaJoin(b *testing.B) {
	paths := writeEquivSources(b, 1200)
	const q = `SELECT * FROM lineitem t1
DENIAL(t2, t1.extendedprice < t2.extendedprice and t1.discount > t2.discount and t1.extendedprice < 1400)
REPAIR(t1.discount)`
	for _, nw := range []int{1, 3} {
		b.Run(fmt.Sprintf("workers=%d", nw), func(b *testing.B) {
			c := newTestCluster(b, nw, paths, cleandb.WithWorkers(8))
			ctx := context.Background()
			if _, _, err := c.run(ctx, q); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var coordSlots, clusterSlots int64
			for i := 0; i < b.N; i++ {
				sess := c.coord.StartSession(ctx, q, nil)
				if sess == nil {
					b.Fatal("StartSession declined")
				}
				if _, err := c.db.QueryContext(sess.Attach(ctx), q); err != nil {
					b.Fatal(err)
				}
				frags := sess.Finish()
				coordSlots += sess.ExecSlots()
				clusterSlots += sess.ExecSlots()
				for _, f := range frags {
					if f.Err != "" {
						b.Fatalf("fragment on %s: %s", f.Worker, f.Err)
					}
					clusterSlots += f.ExecSlots
				}
			}
			b.ReportMetric(float64(coordSlots)/float64(b.N), "node-slots/op")
			b.ReportMetric(float64(clusterSlots)/float64(b.N), "cluster-slots/op")
		})
	}
}
