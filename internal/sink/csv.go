package sink

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"

	"cleandb/internal/data"
	"cleandb/internal/types"
)

// CSV writes results as CSV with a header row, cell-compatible with
// data.WriteCSV (nulls become empty cells, lists join with "|"). Each
// partition encodes into its own buffer on the calling goroutine —
// WritePartition is where the parallelism happens — and the buffers stitch
// to the output in partition order, so at most the partitions in flight are
// ever buffered.
type CSV struct {
	streamSink
}

// NewCSV returns a CSV sink over an io.Writer.
func NewCSV(w io.Writer) *CSV { return &CSV{streamSink: streamSink{w: w}} }

// NewCSVFile returns a CSV sink that creates path at Open.
func NewCSVFile(path string) *CSV { return &CSV{streamSink: streamSink{path: path}} }

// Open implements Sink: it creates the output file (when file-backed) and
// writes the header row. A nil schema — an empty result, or non-record rows
// — produces a headerless file, matching data.WriteCSV on the same rows.
func (s *CSV) Open(schema []string) error {
	if err := s.open(); err != nil {
		return err
	}
	if len(schema) == 0 {
		return nil
	}
	cw := csv.NewWriter(s.bw)
	if err := cw.Write(schema); err != nil {
		return s.abandonOpen(err)
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return s.abandonOpen(err)
	}
	return nil
}

// WritePartition implements Sink: it encodes rows into a partition-local
// buffer and hands it to the ordered stitcher. Safe for concurrent calls
// with distinct indices.
func (s *CSV) WritePartition(i int, rows []types.Value) error {
	var buf bytes.Buffer
	cw := csv.NewWriter(&buf)
	for _, row := range rows {
		rec := row.Record()
		if rec == nil {
			return fmt.Errorf("sink: csv: rows must be records, got %s", row.Kind())
		}
		cells := make([]string, len(rec.Fields))
		for c, f := range rec.Fields {
			cells[c] = data.CellString(f)
		}
		if err := cw.Write(cells); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return s.put(i, buf.Bytes())
}
