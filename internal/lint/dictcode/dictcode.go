// Package dictcode guards the dictionary-encoding invariants behind the
// columnar fast path: codes minted by one data.Dict are meaningless in
// another, so comparing codes that came from two distinct dictionaries —
// without RemapDict unifying them first — is silently wrong (two different
// strings can share a code; equal strings can differ). It also flags
// Dict.Code calls with loop-invariant arguments inside per-row loops: Code
// interns (it takes the write lock on a miss), so the lookup belongs outside
// the loop, as the vectorized filter kernels do.
package dictcode

import (
	"go/ast"
	"go/token"
	"go/types"

	"cleandb/internal/lint/analysis"
	"cleandb/internal/lint/lintutil"
)

// Analyzer flags cross-dictionary code comparisons and unhoisted interning.
var Analyzer = &analysis.Analyzer{
	Name: "dictcode",
	Doc: "dictionary codes are only comparable within one data.Dict\n\n" +
		"Flags (1) comparisons where both operands are codes obtained from " +
		"syntactically distinct *data.Dict values — remap through one shared " +
		"dictionary (ColumnBatch.RemapDict) before comparing codes; and (2) " +
		"Dict.Code/Dict.Lookup calls inside loops whose receiver and " +
		"arguments are loop-invariant — hoist the lookup out of the per-row " +
		"loop, since Code takes the interner's write lock on a miss.",
	Run: run,
}

const dataPkg = "cleandb/internal/data"

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		lintutil.FuncScopes(file, func(name string, body *ast.BlockStmt, decl ast.Node) {
			checkHoisting(pass, body)
			checkCrossDict(pass, body)
		})
	}
	return nil, nil
}

// dictCall matches d.Code(x) / d.Lookup(x) and returns the receiver.
func dictCall(info *types.Info, n ast.Node) (recv ast.Expr, ok bool) {
	call, isCall := n.(*ast.CallExpr)
	if !isCall {
		return nil, false
	}
	fn := lintutil.Callee(info, call)
	if fn == nil {
		return nil, false
	}
	if !lintutil.IsMethod(fn, dataPkg, "Dict", "Code") &&
		!lintutil.IsMethod(fn, dataPkg, "Dict", "Lookup") {
		return nil, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, false
	}
	return sel.X, true
}

// checkHoisting flags Dict.Code/Lookup calls inside loops when receiver and
// every argument are invariant with respect to the innermost enclosing loop.
func checkHoisting(pass *analysis.Pass, body *ast.BlockStmt) {
	var loops []ast.Node
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
			ast.Inspect(loopBody(n), walk)
			loops = loops[:len(loops)-1]
			return false
		case *ast.CallExpr:
			if len(loops) == 0 {
				return true
			}
			recv, ok := dictCall(pass.TypesInfo, x)
			if !ok {
				return true
			}
			inner := loops[len(loops)-1]
			invariant := lintutil.LoopInvariant(pass.TypesInfo, recv, inner)
			for _, arg := range x.Args {
				invariant = invariant && lintutil.LoopInvariant(pass.TypesInfo, arg, inner)
			}
			if invariant {
				pass.Reportf(x.Pos(),
					"Dict.%s with loop-invariant receiver and arguments inside a loop; hoist the lookup before the loop (Code takes the interner write lock on a miss)",
					calleeName(pass, x))
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	if fn := lintutil.Callee(pass.TypesInfo, call); fn != nil {
		return fn.Name()
	}
	return "Code"
}

// checkCrossDict flags comparisons whose two operands are dictionary codes
// obtained from distinct Dict expressions within this scope.
func checkCrossDict(pass *analysis.Pass, body *ast.BlockStmt) {
	// Provenance: variable object -> canonical receiver text of the Dict
	// that minted it.
	prov := map[types.Object]string{}
	lintutil.InspectScope(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		recv, ok := dictCall(pass.TypesInfo, as.Rhs[0])
		if !ok || len(as.Lhs) == 0 {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := objectOf(pass.TypesInfo, id); obj != nil {
				prov[obj] = types.ExprString(recv)
			}
		}
		return true
	})
	lintutil.InspectScope(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || !isComparison(be.Op) {
			return true
		}
		lp := provenanceOf(pass.TypesInfo, prov, be.X)
		rp := provenanceOf(pass.TypesInfo, prov, be.Y)
		if lp != "" && rp != "" && lp != rp {
			pass.Reportf(be.Pos(),
				"comparing dictionary codes from distinct dictionaries (%s vs %s); codes are only comparable within one data.Dict — remap into a shared dictionary first",
				lp, rp)
		}
		return true
	})
}

func isComparison(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

// provenanceOf resolves the minting dictionary of an expression: a direct
// d.Code(x) call, or a variable assigned from one in this scope.
func provenanceOf(info *types.Info, prov map[types.Object]string, e ast.Expr) string {
	e = ast.Unparen(e)
	if recv, ok := dictCall(info, e); ok {
		return types.ExprString(recv)
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := objectOf(info, id); obj != nil {
			return prov[obj]
		}
	}
	return ""
}

func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// loopBody returns the statement body of a loop node.
func loopBody(n ast.Node) ast.Node {
	switch l := n.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return n
}
