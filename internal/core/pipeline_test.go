package core

import (
	"strings"
	"testing"

	"cleandb/internal/algebra"
	"cleandb/internal/engine"
	"cleandb/internal/types"
)

var custSchema = types.NewSchema("name", "address", "phone", "nationkey")

func cust(name, address, phone string, nation int64) types.Value {
	return types.NewRecord(custSchema, []types.Value{
		types.String(name), types.String(address), types.String(phone), types.Int(nation),
	})
}

var dictSchema = types.NewSchema("term")

func dictRec(term string) types.Value {
	return types.NewRecord(dictSchema, []types.Value{types.String(term)})
}

func testCatalog(ctx *engine.Context) map[string]*engine.Dataset {
	customers := []types.Value{
		cust("alice", "12 oak st", "555-1234", 1),
		cust("alicia", "12 oak st", "555-9999", 1), // FD violation on address→prefix(phone), near-dup of alice
		cust("bob", "7 elm ave", "222-1111", 2),
		cust("carol", "9 pine rd", "333-0000", 3),
		cust("krol", "9 pine rd", "333-4444", 3), // another FD violation group
		cust("dave", "1 fir ln", "444-2222", 4),
	}
	dict := []types.Value{
		dictRec("alice"), dictRec("bob"), dictRec("carol"), dictRec("dave"), dictRec("karol"),
	}
	return map[string]*engine.Dataset{
		"customer":   engine.FromValues(ctx, customers),
		"dictionary": engine.FromValues(ctx, dict),
	}
}

const runningExample = `
SELECT c.name, c.address, *
FROM customer c, dictionary d
FD(c.address, prefix(c.phone))
DEDUP(token_filtering, LD, 0.6, c.name)
CLUSTER BY(token_filtering, LD, 0.7, c.name)`

func TestRunningExampleUnified(t *testing.T) {
	ctx := engine.NewContext(4)
	p := NewPipeline(ctx, testCatalog(ctx))
	res, err := p.Run(runningExample)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Combined == nil {
		t.Fatalf("expected combined output for multi-operator query")
	}
	if res.Combined.Len() == 0 {
		t.Fatalf("expected violations, got none; explain:\n%s", res.Explanation)
	}
	// FD violations: both "12 oak st" (prefixes 555 differ? no — 555 same...
	// prefix is 3 chars: "555" for both) — so oak st is NOT an FD violation;
	// "9 pine rd" has prefixes 333 vs 333 — also same. Re-check below.
	t.Logf("combined: %d entities", res.Combined.Len())
	for v := range res.Combined.All() {
		t.Logf("  %s", v)
	}
}

func TestFDStandalone(t *testing.T) {
	ctx := engine.NewContext(4)
	p := NewPipeline(ctx, testCatalog(ctx))
	// address → nationkey: plant a violation.
	cat := testCatalog(ctx)
	extra := cust("eve", "12 oak st", "555-0000", 9) // same address, different nation
	cat["customer"] = cat["customer"].Union(engine.FromValues(ctx, []types.Value{extra}))
	p.Catalog = MapCatalog(cat)
	res, err := p.Run(`SELECT * FROM customer c FD(c.address, c.nationkey)`)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rows := res.Rows()
	if len(rows) != 1 {
		t.Fatalf("want exactly 1 violating group, got %d: %v", len(rows), rows)
	}
	if got := rows[0].Field("key").Str(); got != "12 oak st" {
		t.Fatalf("violating key = %q, want %q", got, "12 oak st")
	}
	vals := rows[0].Field("values").List()
	if len(vals) != 2 {
		t.Fatalf("want 2 distinct RHS values, got %d", len(vals))
	}
}

func TestDedupStandalone(t *testing.T) {
	ctx := engine.NewContext(4)
	p := NewPipeline(ctx, testCatalog(ctx))
	res, err := p.Run(`SELECT * FROM customer c DEDUP(token_filtering, LD, 0.6, c.name)`)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rows := res.Rows()
	// alice/alicia are 0.66-similar (LD=2 over 6), carol/krol 0.6 — expect
	// at least the alice pair.
	found := false
	for _, r := range rows {
		a := r.Field("a").Field("name").Str()
		b := r.Field("b").Field("name").Str()
		if (a == "alice" && b == "alicia") || (a == "alicia" && b == "alice") {
			found = true
		}
		if a == b {
			t.Fatalf("self-pair reported: %s", r)
		}
	}
	if !found {
		t.Fatalf("expected alice/alicia duplicate pair, got %v", rows)
	}
}

func TestClusterByStandalone(t *testing.T) {
	ctx := engine.NewContext(4)
	p := NewPipeline(ctx, testCatalog(ctx))
	res, err := p.Run(`SELECT * FROM customer c, dictionary d CLUSTER BY(token_filtering, LD, 0.7, c.name)`)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// "krol" should be repaired to "karol" (LD=1 over 5 → 0.8 > 0.7).
	found := false
	for _, r := range res.Rows() {
		if r.Field("term").Str() == "krol" && r.Field("suggestion").Str() == "karol" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected krol→karol suggestion, got %v", res.Rows())
	}
}

func TestPlainQuery(t *testing.T) {
	ctx := engine.NewContext(4)
	p := NewPipeline(ctx, testCatalog(ctx))
	res, err := p.Run(`SELECT c.name AS n, prefix(c.phone) AS pre FROM customer c WHERE c.nationkey < 3`)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rows := res.Rows()
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d: %v", len(rows), rows)
	}
	for _, r := range rows {
		if r.Field("pre").Str() == "" {
			t.Fatalf("missing prefix in %s", r)
		}
	}
}

func TestGroupByQuery(t *testing.T) {
	ctx := engine.NewContext(4)
	p := NewPipeline(ctx, testCatalog(ctx))
	res, err := p.Run(`SELECT c.address, count(*) AS n FROM customer c GROUP BY c.address HAVING count(*) > 1`)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rows := res.Rows()
	if len(rows) != 2 {
		t.Fatalf("want 2 groups with >1 member, got %d: %v", len(rows), rows)
	}
	for _, r := range rows {
		if r.Field("n").Int() != 2 {
			t.Fatalf("group %s: n=%d, want 2", r, r.Field("n").Int())
		}
	}
}

func TestSharedNestAcrossOps(t *testing.T) {
	ctx := engine.NewContext(4)
	p := NewPipeline(ctx, testCatalog(ctx))
	prep, err := p.Prepare(`
SELECT * FROM customer c
FD(c.address, prefix(c.phone))
FD(c.address, c.nationkey)
DEDUP(attribute, LD, 0.5, c.address, c.name)`)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	// The three operators group customer by address; after rewriting they
	// must share a single Nest (and a single Scan).
	nests := map[algebra.Plan]struct{}{}
	scans := map[algebra.Plan]struct{}{}
	var walk func(p algebra.Plan)
	seen := map[algebra.Plan]bool{}
	walk = func(pl algebra.Plan) {
		if seen[pl] {
			return
		}
		seen[pl] = true
		switch pl.(type) {
		case *algebra.Nest:
			nests[pl] = struct{}{}
		case *algebra.Scan:
			scans[pl] = struct{}{}
		}
		for _, c := range pl.Children() {
			walk(c)
		}
	}
	for _, pl := range prep.plans {
		walk(pl)
	}
	if len(nests) != 1 {
		t.Fatalf("want 1 shared Nest across 3 ops, got %d\n%s", len(nests), prep.Explain())
	}
	if len(scans) != 1 {
		t.Fatalf("want 1 shared Scan, got %d\n%s", len(scans), prep.Explain())
	}
	if !strings.Contains(prep.Explain(), "shared node") {
		t.Fatalf("explain should mark shared nodes:\n%s", prep.Explain())
	}
}
