package core

import (
	"sort"
	"strings"
	"testing"

	"cleandb/internal/engine"
	"cleandb/internal/physical"
	"cleandb/internal/types"
)

// TestUnifiedMatchesStandaloneViolations: the unified DAG must report exactly
// the entities the standalone runs report — sharing changes cost, never
// answers.
func TestUnifiedMatchesStandaloneViolations(t *testing.T) {
	query := `
SELECT * FROM customer c
FD(c.address, prefix(c.phone))
FD(c.address, c.nationkey)
DEDUP(attribute, LD, 0.5, c.address, c.name)`

	runMode := func(unified, noShare bool) map[string]int {
		ctx := engine.NewContext(4)
		p := NewPipeline(ctx, testCatalog(ctx))
		p.Unified = unified
		p.NoSharing = noShare
		res, err := p.Run(query)
		if err != nil {
			t.Fatalf("Run(unified=%v): %v", unified, err)
		}
		counts := map[string]int{}
		if unified {
			for row := range res.Combined.All() {
				for _, task := range []string{"fd1", "fd2", "dedup1"} {
					counts[task] += len(row.Field(task).List())
				}
			}
		} else {
			for _, task := range res.Tasks {
				counts[task.Name] = task.Output.Len()
			}
		}
		return counts
	}

	shared := runMode(true, false)
	unshared := runMode(true, true)
	standalone := runMode(false, false)

	for _, task := range []string{"fd1", "fd2", "dedup1"} {
		if shared[task] != standalone[task] {
			t.Errorf("task %s: unified=%d standalone=%d", task, shared[task], standalone[task])
		}
		if shared[task] != unshared[task] {
			t.Errorf("task %s: shared=%d unshared=%d", task, shared[task], unshared[task])
		}
	}
}

// TestUnifiedCostsLessThanUnshared: with three operators grouping on the
// same key, the shared DAG must shuffle less and cost fewer ticks.
func TestUnifiedCostsLessThanUnshared(t *testing.T) {
	query := `
SELECT * FROM customer c
FD(c.address, prefix(c.phone))
FD(c.address, c.nationkey)
DEDUP(attribute, LD, 0.5, c.address, c.name)`

	cost := func(noShare bool) int64 {
		ctx := engine.NewContext(4)
		p := NewPipeline(ctx, testCatalog(ctx))
		p.NoSharing = noShare
		if _, err := p.Run(query); err != nil {
			t.Fatal(err)
		}
		return ctx.Metrics().SimTicks()
	}
	if shared, unshared := cost(false), cost(true); shared >= unshared {
		t.Errorf("shared plan (%d ticks) should cost less than unshared (%d)", shared, unshared)
	}
}

func TestPipelineStrategiesProduceSameViolations(t *testing.T) {
	query := `SELECT * FROM customer c FD(c.address, prefix(c.phone))`
	counts := map[physical.GroupStrategy]int{}
	for _, g := range []physical.GroupStrategy{physical.GroupAggregate, physical.GroupSort, physical.GroupHash} {
		ctx := engine.NewContext(4)
		p := NewPipeline(ctx, testCatalog(ctx))
		p.Config.Group = g
		res, err := p.Run(query)
		if err != nil {
			t.Fatal(err)
		}
		counts[g] = len(res.Rows())
	}
	if counts[physical.GroupAggregate] != counts[physical.GroupSort] ||
		counts[physical.GroupAggregate] != counts[physical.GroupHash] {
		t.Fatalf("strategies disagree on violations: %v", counts)
	}
}

func TestClusterByKMeansThroughPipeline(t *testing.T) {
	ctx := engine.NewContext(4)
	p := NewPipeline(ctx, testCatalog(ctx))
	res, err := p.Run(`SELECT * FROM customer c, dictionary d CLUSTER BY(kmeans(2), LD, 0.7, c.name)`)
	if err != nil {
		t.Fatal(err)
	}
	// krol→karol must be found regardless of the blocking technique, since
	// k-means assigns both to their closest shared center.
	found := false
	for _, r := range res.Rows() {
		if r.Field("term").Str() == "krol" && r.Field("suggestion").Str() == "karol" {
			found = true
		}
	}
	if !found {
		t.Fatalf("kmeans cluster-by missed krol→karol: %v", res.Rows())
	}
}

func TestPipelineTrace(t *testing.T) {
	ctx := engine.NewContext(2)
	p := NewPipeline(ctx, testCatalog(ctx))
	var levels []string
	p.Trace = func(level, rule, detail string) {
		levels = append(levels, level+":"+rule)
	}
	_, err := p.Run(`
SELECT * FROM customer c
FD(c.address, c.nationkey)
DEDUP(attribute, LD, 0.5, c.address, c.name)`)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(levels, ",")
	if !strings.Contains(joined, "algebra:") {
		t.Fatalf("expected algebra-level trace events, got %v", levels)
	}
	if !strings.Contains(joined, "coalesce-nest") && !strings.Contains(joined, "share-") {
		t.Fatalf("expected sharing trace events, got %v", levels)
	}
}

func TestGroupByWithAvg(t *testing.T) {
	ctx := engine.NewContext(2)
	schema := types.NewSchema("g", "v")
	rows := []types.Value{
		types.NewRecord(schema, []types.Value{types.String("a"), types.Int(10)}),
		types.NewRecord(schema, []types.Value{types.String("a"), types.Int(20)}),
		types.NewRecord(schema, []types.Value{types.String("b"), types.Int(7)}),
	}
	p := NewPipeline(ctx, map[string]*engine.Dataset{"t": engine.FromValues(ctx, rows)})
	res, err := p.Run(`SELECT t.g, avg(t.v) AS m, min(t.v) AS lo, max(t.v) AS hi FROM t GROUP BY t.g`)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string][3]float64{}
	for _, r := range res.Rows() {
		got[r.Field("g").Str()] = [3]float64{r.Field("m").Float(), r.Field("lo").Float(), r.Field("hi").Float()}
	}
	if got["a"] != [3]float64{15, 10, 20} {
		t.Fatalf("group a aggregates = %v", got["a"])
	}
	if got["b"] != [3]float64{7, 7, 7} {
		t.Fatalf("group b aggregates = %v", got["b"])
	}
}

func TestDistinctQuery(t *testing.T) {
	ctx := engine.NewContext(2)
	p := NewPipeline(ctx, testCatalog(ctx))
	res, err := p.Run(`SELECT DISTINCT c.nationkey AS n FROM customer c`)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, r := range res.Rows() {
		n := r.Field("n").Int()
		if seen[n] {
			t.Fatalf("distinct produced duplicate %d", n)
		}
		seen[n] = true
	}
}

func TestJoinQueryThroughPipeline(t *testing.T) {
	ctx := engine.NewContext(2)
	p := NewPipeline(ctx, testCatalog(ctx))
	// Equi-join customers with dictionary on exact name match.
	res, err := p.Run(`SELECT c.name AS n FROM customer c, dictionary d WHERE c.name = d.term`)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, r := range res.Rows() {
		names = append(names, r.Field("n").Str())
	}
	sort.Strings(names)
	want := []string{"alice", "bob", "carol", "dave"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("join names = %v, want %v", names, want)
	}
}

func TestResultUnwrapsOutVar(t *testing.T) {
	ctx := engine.NewContext(2)
	p := NewPipeline(ctx, testCatalog(ctx))
	res, err := p.Run(`SELECT c.name AS n FROM customer c`)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows() {
		if rec := r.Record(); rec != nil && rec.Schema.Has("$out") {
			t.Fatalf("result rows should be unwrapped: %s", r)
		}
		if r.Field("n").IsNull() {
			t.Fatalf("projected field missing: %s", r)
		}
	}
}

func TestWhereEquiJoinPushedIntoJoin(t *testing.T) {
	ctx := engine.NewContext(2)
	p := NewPipeline(ctx, testCatalog(ctx))
	prep, err := p.Prepare(`SELECT c.name AS n FROM customer c, dictionary d WHERE c.name = d.term`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(prep.Explain(), "CrossJoin") {
		t.Fatalf("equality join should not plan a cross product:\n%s", prep.Explain())
	}
	if !strings.Contains(prep.Explain(), "EquiJoin") {
		t.Fatalf("expected an equi-join:\n%s", prep.Explain())
	}
}
