// Package data implements CleanDB's heterogeneous source formats: CSV,
// JSON (one object per line), XML (hierarchical, DBLP-style), and colbin —
// a binary columnar format with dictionary-encoded strings that stands in
// for Parquet in the paper's experiments. It also provides flattening of
// nested records into relational rows, which the paper uses to contrast
// cleaning nested data in place against flattening it first.
package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"cleandb/internal/types"
)

// ColType enumerates colbin/CSV column types.
type ColType uint8

// Column types.
const (
	ColString ColType = iota
	ColInt
	ColFloat
	ColBool
	ColStringList // one-level nested list of strings
)

// String names the column type.
func (t ColType) String() string {
	switch t {
	case ColString:
		return "string"
	case ColInt:
		return "int"
	case ColFloat:
		return "float"
	case ColBool:
		return "bool"
	case ColStringList:
		return "list<string>"
	default:
		return "?"
	}
}

// ReadCSV parses CSV with a header row into records, inferring column types
// (int, then float, then string) from the data. Empty cells become nulls.
func ReadCSV(r io.Reader) ([]types.Value, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("data: csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, nil
	}
	header := rows[0]
	schema := types.NewSchema(header...)
	colTypes := InferColumnTypes([][][]string{rows[1:]}, len(header))
	out := make([]types.Value, 0, len(rows)-1)
	for _, row := range rows[1:] {
		fields := make([]types.Value, len(header))
		for i := range header {
			var cell string
			if i < len(row) {
				cell = row[i]
			}
			fields[i] = ParseCell(cell, colTypes[i])
		}
		out = append(out, types.NewRecord(schema, fields))
	}
	return out, nil
}

// InferColumnTypes infers one ColType per column (int, then float, then
// string) over raw CSV cells supplied as one or more row chunks. The chunked
// signature lets a partition-parallel loader infer types globally — the whole
// file votes on every column, exactly as if the chunks were one slice — while
// each chunk keeps its own backing array.
func InferColumnTypes(chunks [][][]string, cols int) []ColType {
	out, _ := InferColumnTypesSeen(chunks, cols)
	return out
}

// InferColumnTypesSeen is InferColumnTypes plus a per-column flag recording
// whether any non-empty cell voted. An all-empty column defaults to string,
// and incremental tail scans must distinguish "defaulted" from "voted" when
// joining a tail's inferred types with the base scan's: a defaulted base
// column may adopt the tail's type (the base cells are all nulls either
// way), while a voted one that widens forces a full re-scan.
func InferColumnTypesSeen(chunks [][][]string, cols int) ([]ColType, []bool) {
	out := make([]ColType, cols)
	voted := make([]bool, cols)
	for i := 0; i < cols; i++ {
		t := ColInt
		seen := false
	scan:
		for _, rows := range chunks {
			for _, row := range rows {
				if i >= len(row) || row[i] == "" {
					continue
				}
				seen = true
				cell := row[i]
				switch t {
				case ColInt:
					if _, err := strconv.ParseInt(cell, 10, 64); err != nil {
						if _, ferr := strconv.ParseFloat(cell, 64); ferr == nil {
							t = ColFloat
						} else {
							t = ColString
						}
					}
				case ColFloat:
					if _, err := strconv.ParseFloat(cell, 64); err != nil {
						t = ColString
					}
				}
				if t == ColString {
					break scan
				}
			}
		}
		if !seen {
			t = ColString
		}
		out[i] = t
		voted[i] = seen
	}
	return out, voted
}

// ParseCell converts one raw CSV cell into a Value of the column's inferred
// type. Empty cells are nulls — never typed zero values — matching the null
// semantics of the JSON and XML readers; cells that fail to parse as the
// column type fall back to strings rather than erroring, since dirty data is
// the product's whole point.
func ParseCell(cell string, t ColType) types.Value {
	if cell == "" {
		return types.Null()
	}
	switch t {
	case ColInt:
		n, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return types.String(cell)
		}
		return types.Int(n)
	case ColFloat:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return types.String(cell)
		}
		return types.Float(f)
	default:
		return types.String(cell)
	}
}

// WriteCSV renders records (sharing one schema) as CSV with a header row.
// List fields are joined with "|".
func WriteCSV(w io.Writer, rows []types.Value) error {
	if len(rows) == 0 {
		return nil
	}
	rec := rows[0].Record()
	if rec == nil {
		return fmt.Errorf("data: csv: rows must be records")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(rec.Schema.Names); err != nil {
		return err
	}
	for _, row := range rows {
		r := row.Record()
		cells := make([]string, len(r.Fields))
		for i, f := range r.Fields {
			cells[i] = CellString(f)
		}
		if err := cw.Write(cells); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CellString renders one value as a CSV cell: nulls become empty cells,
// lists join with "|", everything else uses the value's canonical text.
// Exported so the sink layer's partition-parallel CSV encoder writes cells
// byte-identically to WriteCSV.
func CellString(v types.Value) string {
	switch v.Kind() {
	case types.KindNull:
		return ""
	case types.KindList:
		parts := make([]string, len(v.List()))
		for i, e := range v.List() {
			parts[i] = CellString(e)
		}
		return strings.Join(parts, "|")
	default:
		return v.String()
	}
}
