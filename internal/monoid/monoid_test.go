package monoid

import (
	"math/rand"
	"testing"

	"cleandb/internal/types"
)

// randomValue builds bounded random values for law tests.
func randomValue(rng *rand.Rand, depth int) types.Value {
	max := 6
	if depth <= 0 {
		max = 5
	}
	switch rng.Intn(max) {
	case 0:
		return types.Null()
	case 1:
		return types.Bool(rng.Intn(2) == 0)
	case 2:
		return types.Int(int64(rng.Intn(11) - 5))
	case 3:
		return types.Float(float64(rng.Intn(12)) / 4)
	case 4:
		letters := []byte("ab")
		n := rng.Intn(3)
		s := make([]byte, n)
		for i := range s {
			s[i] = letters[rng.Intn(len(letters))]
		}
		return types.String(string(s))
	default:
		n := rng.Intn(3)
		elems := make([]types.Value, n)
		for i := range elems {
			elems[i] = randomValue(rng, depth-1)
		}
		return types.ListOf(elems)
	}
}

// monoidValue builds a random value in the monoid's carrier set by folding
// random units, so Merge inputs are well-typed.
func monoidValue(m Monoid, rng *rand.Rand) types.Value {
	n := rng.Intn(4)
	acc := m.Zero()
	for i := 0; i < n; i++ {
		var unit types.Value
		switch m.Name() {
		case "sum", "prod", "count", "max", "min":
			unit = types.Int(int64(rng.Intn(9) - 4))
		case "all", "any":
			unit = types.Bool(rng.Intn(2) == 0)
		case "groupby":
			unit = types.NewRecord(GroupBySchema, []types.Value{
				types.String(string(rune('a' + rng.Intn(3)))),
				types.Int(int64(rng.Intn(5))),
			})
		default:
			unit = randomValue(rng, 2)
		}
		acc = m.Merge(acc, m.Unit(unit))
	}
	return acc
}

// checkMonoidLaws verifies identity and associativity over random carriers.
func checkMonoidLaws(t *testing.T, m Monoid) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	canon := func(v types.Value) string {
		if m.Name() == "groupby" {
			return types.Key(NormalizeGrouping(v))
		}
		if m.Name() == "bag" {
			// Bags are order-insensitive: compare sorted.
			l := append([]types.Value(nil), v.List()...)
			types.SortValues(l)
			return types.Key(types.ListOf(l))
		}
		return types.Key(v)
	}
	for i := 0; i < 400; i++ {
		a := monoidValue(m, rng)
		b := monoidValue(m, rng)
		c := monoidValue(m, rng)
		if canon(m.Merge(a, m.Zero())) != canon(a) {
			t.Fatalf("%s: right identity violated for %s", m.Name(), a)
		}
		if canon(m.Merge(m.Zero(), a)) != canon(a) {
			t.Fatalf("%s: left identity violated for %s", m.Name(), a)
		}
		l := m.Merge(m.Merge(a, b), c)
		r := m.Merge(a, m.Merge(b, c))
		if canon(l) != canon(r) {
			t.Fatalf("%s: associativity violated:\n (a·b)·c = %s\n a·(b·c) = %s", m.Name(), l, r)
		}
		if m.Idempotent() {
			if canon(m.Merge(a, a)) != canon(a) {
				t.Fatalf("%s: claimed idempotent but a·a ≠ a for %s", m.Name(), a)
			}
		}
	}
}

func TestMonoidLaws(t *testing.T) {
	for _, m := range []Monoid{Sum, Prod, Count, Max, Min, All, Any, Bag, ListM, Set, GroupBy{}} {
		m := m
		t.Run(m.Name(), func(t *testing.T) { checkMonoidLaws(t, m) })
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"sum", "prod", "count", "max", "min", "all", "any", "bag", "list", "set"} {
		m, ok := ByName(name)
		if !ok || m.Name() != name {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown monoid should not resolve")
	}
}

func TestFold(t *testing.T) {
	vs := []types.Value{types.Int(1), types.Int(2), types.Int(3)}
	if Fold(Sum, vs).Int() != 6 {
		t.Error("sum fold")
	}
	if Fold(Count, vs).Int() != 3 {
		t.Error("count fold")
	}
	if Fold(Max, vs).Int() != 3 {
		t.Error("max fold")
	}
	if Fold(Min, vs).Int() != 1 {
		t.Error("min fold")
	}
	if Fold(Max, nil).Kind() != types.KindNull {
		t.Error("max of empty is null (zero)")
	}
}

func TestSetDedups(t *testing.T) {
	v := Fold(Set, []types.Value{types.Int(1), types.Int(1), types.Int(2)})
	if len(v.List()) != 2 {
		t.Fatalf("set should dedup: %s", v)
	}
}

func TestSumMixedNumeric(t *testing.T) {
	v := Sum.Merge(types.Int(1), types.Float(2.5))
	if v.Kind() != types.KindFloat || v.Float() != 3.5 {
		t.Fatalf("mixed sum = %s", v)
	}
}

func TestFunctionCompositionMonoid(t *testing.T) {
	add := func(n int64) StateFn {
		return func(s types.Value) types.Value { return types.Int(s.Int() + n) }
	}
	// Composition is associative: ((f∘g)∘h)(x) == (f∘(g∘h))(x).
	f, g, h := add(1), add(10), add(100)
	l := ComposeState(ComposeState(f, g), h)(types.Int(0))
	r := ComposeState(f, ComposeState(g, h))(types.Int(0))
	if l.Int() != r.Int() || l.Int() != 111 {
		t.Fatalf("composition mismatch: %d vs %d", l.Int(), r.Int())
	}
	// Identity element.
	if ComposeState(nil, f)(types.Int(5)).Int() != 6 {
		t.Error("nil left identity")
	}
	if out := ApplyComposition(types.Int(0), []StateFn{f, g, h}); out.Int() != 111 {
		t.Fatalf("ApplyComposition = %d", out.Int())
	}
	if out := ApplyComposition(types.Int(7), nil); out.Int() != 7 {
		t.Error("empty composition is identity")
	}
}

func TestGroupByUnitMerge(t *testing.T) {
	gb := GroupBy{}
	u1 := gb.Unit(types.NewRecord(GroupBySchema, []types.Value{types.String("k"), types.Int(1)}))
	u2 := gb.Unit(types.NewRecord(GroupBySchema, []types.Value{types.String("k"), types.Int(2)}))
	merged := gb.Merge(u1, u2)
	groups := merged.List()
	if len(groups) != 1 {
		t.Fatalf("want 1 group, got %d", len(groups))
	}
	if len(groups[0].Field("group").List()) != 2 {
		t.Fatalf("group should hold both values: %s", merged)
	}
}

func TestNormalizeGroupingOrderInsensitive(t *testing.T) {
	gb := GroupBy{}
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < 100; i++ {
		units := make([]types.Value, 6)
		for j := range units {
			units[j] = types.NewRecord(GroupBySchema, []types.Value{
				types.String(string(rune('a' + rng.Intn(3)))), types.Int(int64(j)),
			})
		}
		// Fold in two different orders.
		l, r := gb.Zero(), gb.Zero()
		for _, u := range units {
			l = gb.Merge(l, gb.Unit(u))
		}
		perm := rng.Perm(len(units))
		for _, j := range perm {
			r = gb.Merge(gb.Unit(units[j]), r)
		}
		if types.Key(NormalizeGrouping(l)) != types.Key(NormalizeGrouping(r)) {
			t.Fatalf("grouping depends on fold order")
		}
	}
}
