package sinkrelease_test

import (
	"testing"

	"cleandb/internal/lint/analysistest"
	"cleandb/internal/lint/sinkrelease"
)

func TestSinkRelease(t *testing.T) {
	analysistest.Run(t, "testdata", sinkrelease.Analyzer, "sinkfixture")
}
