package data

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// voteCells is an alphabet chosen to exercise every inference transition:
// ints, floats (plain, exponent, the ParseFloat-accepted "NaN"), strings that
// look numeric-ish, and empties (no vote).
var voteCells = []string{"", "1", "-7", "007", "3.5", "2e3", "NaN", "abc", "1.0.0", "-", "9999999999999999999"}

func randChunks(rng *rand.Rand, cols int) [][][]string {
	chunks := make([][][]string, rng.Intn(5))
	for ci := range chunks {
		rows := make([][]string, rng.Intn(4))
		for ri := range rows {
			row := make([]string, cols)
			for c := range row {
				row[c] = voteCells[rng.Intn(len(voteCells))]
			}
			rows[ri] = row
		}
		chunks[ci] = rows
	}
	return chunks
}

// TestMergeColVotesMatchesGlobalInference is the custody-scan correctness
// property: folding per-chunk votes (what partitioned members exchange) must
// reproduce InferColumnTypesSeen over the concatenated chunks (what a
// replicated scan computes), for any chunk split.
func TestMergeColVotesMatchesGlobalInference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		cols := 1 + rng.Intn(4)
		chunks := randChunks(rng, cols)

		wantTypes, wantVoted := InferColumnTypesSeen(chunks, cols)

		votes := make([][]ColVote, len(chunks))
		for i, chunk := range chunks {
			ts, voted := InferColumnTypesSeen([][][]string{chunk}, cols)
			votes[i] = ColVotes(ts, voted)
		}
		// Merge order must not matter: fold in a shuffled order.
		rng.Shuffle(len(votes), func(i, j int) { votes[i], votes[j] = votes[j], votes[i] })
		gotTypes, gotVoted := MergeColVotes(votes, cols)

		for c := 0; c < cols; c++ {
			if gotTypes[c] != wantTypes[c] || gotVoted[c] != wantVoted[c] {
				t.Fatalf("trial %d col %d: merged (%v, voted=%v) != global (%v, voted=%v)\nchunks: %v",
					trial, c, gotTypes[c], gotVoted[c], wantTypes[c], wantVoted[c], chunks)
			}
		}
	}
}

func TestScanVoteFrameRoundTrip(t *testing.T) {
	cases := [][]ColVote{
		nil,
		{},
		{{Type: ColInt, Voted: true}},
		{{Type: ColString, Voted: false}, {Type: ColFloat, Voted: true}, {Type: ColInt, Voted: true}},
		{{Type: ColStringList, Voted: true}, {Type: ColBool, Voted: false}},
	}
	for i, votes := range cases {
		frame := EncodeScanVoteFrame(votes)
		got, err := DecodeScanVoteFrame(frame)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if len(got) != len(votes) {
			t.Fatalf("case %d: %d votes round-tripped to %d", i, len(votes), len(got))
		}
		for c := range votes {
			if got[c] != votes[c] {
				t.Fatalf("case %d col %d: %+v != %+v", i, c, got[c], votes[c])
			}
		}
	}
}

// TestScanVoteRowsRoundTrip covers the exchange representation: votes render
// as records, cross the wire as a rows frame, and parse back bit-identically.
func TestScanVoteRowsRoundTrip(t *testing.T) {
	votes := []ColVote{
		{Type: ColInt, Voted: true},
		{Type: ColString, Voted: false},
		{Type: ColFloat, Voted: true},
	}
	rows, err := DecodeRowsFrame(EncodeRowsFrame(VoteRows(votes)), NewDict())
	if err != nil {
		t.Fatalf("rows frame round trip: %v", err)
	}
	got, err := VotesOfRows(rows)
	if err != nil {
		t.Fatalf("VotesOfRows: %v", err)
	}
	for i := range votes {
		if got[i] != votes[i] {
			t.Fatalf("col %d: %+v != %+v", i, got[i], votes[i])
		}
	}
	// Non-vote rows must error, not misparse.
	if _, err := VotesOfRows(wireSampleRows()); err == nil {
		t.Fatal("VotesOfRows accepted arbitrary rows")
	}
}

func TestScanVoteFrameCorruption(t *testing.T) {
	frame := EncodeScanVoteFrame([]ColVote{{Type: ColFloat, Voted: true}, {Type: ColInt, Voted: false}})

	check := func(name string, buf []byte) {
		t.Helper()
		if _, err := DecodeScanVoteFrame(buf); !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("%s: err = %v, want ErrFrameCorrupt", name, err)
		}
	}
	check("empty", nil)
	check("truncated", frame[:len(frame)-3])
	check("bad magic", append([]byte("XXXX"), frame[4:]...))

	flipped := bytes.Clone(frame)
	flipped[len(flipped)-2] ^= 0x40 // inside the trailing crc
	check("bad crc", flipped)

	// Wrong frame type: a rows frame is not a scan vote.
	if _, err := DecodeScanVoteFrame(EncodeRowsFrame(nil)); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("rows frame as scan vote: err = %v, want ErrFrameCorrupt", err)
	}
	// And the reverse: a scan vote frame is not rows.
	if _, err := DecodeRowsFrame(frame, NewDict()); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("scan vote frame as rows: err = %v, want ErrFrameCorrupt", err)
	}

	// Valid framing, invalid payload bytes: out-of-range type, voted > 1, odd length.
	for _, bad := range []struct {
		name    string
		payload []byte
	}{
		{"type out of range", []byte{byte(ColStringList) + 1, 1}},
		{"voted out of range", []byte{byte(ColInt), 2}},
		{"odd payload", []byte{byte(ColInt)}},
	} {
		check(fmt.Sprintf("payload %s", bad.name), sealFrame(frameScanVote, bad.payload))
	}
}
