// Package textsim provides the string-similarity primitives that CleanM's
// cleaning operations rely on: Levenshtein edit distance (with a banded
// early-exit variant for thresholded similarity joins), q-gram tokenization,
// Jaccard similarity over token sets, and Jaro-Winkler similarity.
//
// The CleanM paper uses Levenshtein distance (LD) as the similarity metric in
// its term-validation and deduplication experiments, with a normalized
// similarity threshold θ (e.g. sim > 0.8).
package textsim

import (
	"strings"
)

// Levenshtein returns the edit distance (insert/delete/substitute, unit
// costs) between a and b, operating on bytes.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	// Single-row dynamic program.
	prev := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		corner := prev[0]
		prev[0] = i
		for j := 1; j <= len(b); j++ {
			up := prev[j]
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := corner + cost
			if up+1 < best {
				best = up + 1
			}
			if prev[j-1]+1 < best {
				best = prev[j-1] + 1
			}
			corner = up
			prev[j] = best
		}
	}
	return prev[len(b)]
}

// LevenshteinWithin reports whether the edit distance between a and b is at
// most maxDist, using a banded dynamic program that exits early. It is the
// workhorse of thresholded similarity joins: for sim > θ over strings of
// length n, maxDist = floor((1-θ)·n), so most candidate pairs are rejected in
// O(maxDist·n) instead of O(n²).
func LevenshteinWithin(a, b string, maxDist int) bool {
	if maxDist < 0 {
		return false
	}
	la, lb := len(a), len(b)
	if la-lb > maxDist || lb-la > maxDist {
		return false
	}
	if maxDist == 0 {
		return a == b
	}
	const inf = 1 << 29
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		if j <= maxDist {
			prev[j] = j
		} else {
			prev[j] = inf
		}
	}
	for i := 1; i <= la; i++ {
		lo := i - maxDist
		if lo < 1 {
			lo = 1
		}
		hi := i + maxDist
		if hi > lb {
			hi = lb
		}
		if lo > 1 {
			cur[lo-1] = inf
		}
		if i <= maxDist {
			cur[0] = i
		} else {
			cur[0] = inf
		}
		rowMin := cur[0]
		for j := lo; j <= hi; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := prev[j-1] + cost
			if prev[j]+1 < best {
				best = prev[j] + 1
			}
			if cur[j-1]+1 < best {
				best = cur[j-1] + 1
			}
			cur[j] = best
			if best < rowMin {
				rowMin = best
			}
		}
		if hi < lb {
			cur[hi+1] = inf
		}
		if rowMin > maxDist {
			return false
		}
		prev, cur = cur, prev
	}
	return prev[lb] <= maxDist
}

// Similarity returns the normalized Levenshtein similarity in [0,1]:
// 1 - LD(a,b)/max(len(a),len(b)). Two empty strings are fully similar.
func Similarity(a, b string) float64 {
	la, lb := len(a), len(b)
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(m)
}

// SimilarAbove reports whether Similarity(a,b) > theta, using the banded
// early-exit distance computation.
func SimilarAbove(a, b string, theta float64) bool {
	la, lb := len(a), len(b)
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return theta < 1
	}
	// sim > theta  ⇔  dist < (1-theta)·m  ⇔  dist ≤ ceil((1-theta)·m) - 1
	limit := (1 - theta) * float64(m)
	maxDist := int(limit)
	if float64(maxDist) == limit {
		maxDist-- // strict inequality
	}
	return LevenshteinWithin(a, b, maxDist)
}

// QGrams splits s into overlapping tokens of length q. Strings shorter than
// q yield a single token (the string itself), so no value tokenizes to
// nothing. This is the token-filtering tokenizer of the paper (§4.3).
func QGrams(s string, q int) []string {
	if q < 1 {
		q = 1
	}
	if len(s) <= q {
		return []string{s}
	}
	out := make([]string, 0, len(s)-q+1)
	for i := 0; i+q <= len(s); i++ {
		out = append(out, s[i:i+q])
	}
	return out
}

// UniqueQGrams returns the distinct q-grams of s in first-seen order.
func UniqueQGrams(s string, q int) []string {
	grams := QGrams(s, q)
	seen := make(map[string]struct{}, len(grams))
	out := grams[:0]
	for _, g := range grams {
		if _, ok := seen[g]; ok {
			continue
		}
		seen[g] = struct{}{}
		out = append(out, g)
	}
	return out
}

// Jaccard returns |A∩B| / |A∪B| over the q-gram sets of a and b.
func Jaccard(a, b string, q int) float64 {
	ga := UniqueQGrams(a, q)
	gb := UniqueQGrams(b, q)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	set := make(map[string]struct{}, len(ga))
	for _, g := range ga {
		set[g] = struct{}{}
	}
	inter := 0
	for _, g := range gb {
		if _, ok := set[g]; ok {
			inter++
		}
	}
	union := len(ga) + len(gb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// JaroWinkler returns the Jaro-Winkler similarity of a and b in [0,1].
func JaroWinkler(a, b string) float64 {
	j := jaro(a, b)
	if j == 0 {
		return 0
	}
	// Common-prefix boost, capped at 4 characters, scale 0.1.
	p := 0
	for p < len(a) && p < len(b) && p < 4 && a[p] == b[p] {
		p++
	}
	return j + float64(p)*0.1*(1-j)
}

func jaro(a, b string) float64 {
	la, lb := len(a), len(b)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	aMatched := make([]bool, la)
	bMatched := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if bMatched[j] || a[i] != b[j] {
				continue
			}
			aMatched[i] = true
			bMatched[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions.
	trans := 0
	j := 0
	for i := 0; i < la; i++ {
		if !aMatched[i] {
			continue
		}
		for !bMatched[j] {
			j++
		}
		if a[i] != b[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(trans)/2)/m) / 3
}

// Metric names a similarity function selectable from CleanM queries.
type Metric string

// Supported metrics.
const (
	MetricLevenshtein Metric = "LD"
	MetricJaccard     Metric = "jaccard"
	MetricJaroWinkler Metric = "jarowinkler"
)

// Sim evaluates the named metric; unknown names fall back to Levenshtein,
// matching CleanM's default.
func (m Metric) Sim(a, b string) float64 {
	switch m {
	case MetricJaccard:
		return Jaccard(a, b, 2)
	case MetricJaroWinkler:
		return JaroWinkler(a, b)
	default:
		return Similarity(a, b)
	}
}

// Above reports whether the metric value of (a, b) strictly exceeds theta,
// using early-exit computations where available.
func (m Metric) Above(a, b string, theta float64) bool {
	switch m {
	case MetricJaccard:
		return Jaccard(a, b, 2) > theta
	case MetricJaroWinkler:
		return JaroWinkler(a, b) > theta
	default:
		return SimilarAbove(a, b, theta)
	}
}

// ParseMetric normalizes a metric name from query text.
func ParseMetric(s string) Metric {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "jaccard":
		return MetricJaccard
	case "jarowinkler", "jaro_winkler", "jw":
		return MetricJaroWinkler
	default:
		return MetricLevenshtein
	}
}

// Prefix returns the first n bytes of s (all of s when shorter). It backs
// CleanM's prefix() builtin used by FD rules such as address→prefix(phone).
func Prefix(s string, n int) string {
	if n < 0 {
		n = 0
	}
	if len(s) <= n {
		return s
	}
	return s[:n]
}
