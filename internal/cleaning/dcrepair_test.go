package cleaning

import (
	"math"
	"testing"

	"cleandb/internal/datagen"
	"cleandb/internal/engine"
	"cleandb/internal/physical"
	"cleandb/internal/types"
)

var liSchema = types.NewSchema("id", "price", "discount")

func li(id int64, price, discount float64) types.Value {
	return types.NewRecord(liSchema, []types.Value{
		types.Int(id), types.Float(price), types.Float(discount),
	})
}

// ruleψConfig is the paper's rule ψ over the small schema: violation when
// t1.price < t2.price ∧ t1.discount > t2.discount ∧ t1.price < x.
func ruleψConfig(x float64) DCRepairConfig {
	return DCRepairConfig{
		Check: DCConfig{
			LeftFilter: func(v types.Value) bool { return v.Field("price").Float() < x },
			Pred: func(t1, t2 types.Value) bool {
				return t1.Field("price").Float() < t2.Field("price").Float() &&
					t1.Field("discount").Float() > t2.Field("discount").Float() &&
					t1.Field("price").Float() < x
			},
			Band:   func(v types.Value) float64 { return v.Field("price").Float() },
			BandOp: "<",
		},
		RepairAttr: func(v types.Value) float64 { return v.Field("discount").Float() },
		RepairCol:  "discount",
		RepairOp:   ">",
	}
}

func TestRepairDCHealsSmallChain(t *testing.T) {
	// Prices ascending, discounts descending: every pair with price < 100
	// on the left violates. The L1 fit pools everything to the median.
	ctx := engine.NewContext(4)
	ds := engine.FromValues(ctx, []types.Value{
		li(1, 10, 0.09), li(2, 20, 0.07), li(3, 30, 0.03),
	})
	cfg := ruleψConfig(100)
	res, err := RepairDC(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 3 {
		t.Fatalf("violations = %d, want 3", res.Violations)
	}
	if res.Remaining != 0 {
		t.Fatalf("remaining = %d, want 0", res.Remaining)
	}
	leftover, err := DCCheck(res.Repaired, cfg.Check)
	if err != nil {
		t.Fatal(err)
	}
	if leftover.Count() != 0 {
		t.Fatalf("re-check found %d violations", leftover.Count())
	}
	// Median pooling: all three discounts become 0.07 (lower median), so
	// only two values move — the minimum L1 displacement for a full chain.
	for _, v := range res.Repaired.Collect() {
		if d := v.Field("discount").Float(); d != 0.07 {
			t.Fatalf("discount = %v, want 0.07 for all: %s", d, v)
		}
	}
	if res.Changed != 2 {
		t.Fatalf("changed = %d, want 2", res.Changed)
	}
}

func TestRepairDCLeavesCleanDataAlone(t *testing.T) {
	ctx := engine.NewContext(4)
	rows := []types.Value{li(1, 10, 0.01), li(2, 20, 0.05), li(3, 30, 0.05)}
	res, err := RepairDC(engine.FromValues(ctx, rows), ruleψConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 || res.Changed != 0 || res.Rounds != 0 {
		t.Fatalf("clean data repaired: %+v", res)
	}
	if got := res.Repaired.Collect(); len(got) != len(rows) {
		t.Fatalf("rows = %d", len(got))
	}
}

func TestRepairDCIntervals(t *testing.T) {
	// One filtered t1 (price 10, discount 0.09) against partners with
	// discounts 0.03 and 0.05: t1's repair interval is (-Inf, 0.03]; each
	// partner's is [0.09, +Inf).
	pairs := [][2]types.Value{
		{li(1, 10, 0.09), li(2, 20, 0.05)},
		{li(1, 10, 0.09), li(3, 30, 0.03)},
	}
	cfg := ruleψConfig(100)
	ivs := repairIntervals(pairs, cfg)
	t1 := ivs[types.Key(li(1, 10, 0.09))]
	if !math.IsInf(t1.lo, -1) || t1.hi != 0.03 {
		t.Fatalf("t1 interval = [%v, %v], want (-Inf, 0.03]", t1.lo, t1.hi)
	}
	p2 := ivs[types.Key(li(2, 20, 0.05))]
	if p2.lo != 0.09 || !math.IsInf(p2.hi, 1) {
		t.Fatalf("partner interval = [%v, %v], want [0.09, +Inf)", p2.lo, p2.hi)
	}
}

func TestRepairDCClustersIndependently(t *testing.T) {
	// Two non-interacting violation clusters; each must be solved on its
	// own (4 tuples changed at most, tuples outside clusters untouched).
	ctx := engine.NewContext(4)
	rows := []types.Value{
		li(1, 10, 0.02), li(2, 20, 0.01), // cluster A
		li(3, 1000, 0.10),                // clean bystander (filtered, top discount)
		li(4, 30, 0.09), li(5, 40, 0.08), // cluster B
	}
	cfg := ruleψConfig(100)
	res, err := RepairDC(engine.FromValues(ctx, rows), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Remaining != 0 {
		t.Fatalf("remaining = %d", res.Remaining)
	}
	if res.Clusters < 2 {
		t.Fatalf("clusters = %d, want >= 2", res.Clusters)
	}
	for _, v := range res.Repaired.Collect() {
		if v.Field("id").Int() == 3 && v.Field("discount").Float() != 0.10 {
			t.Fatalf("bystander modified: %s", v)
		}
	}
}

func TestRepairDCOppositeDirection(t *testing.T) {
	// Flipped rule: violation when t1.price < t2.price ∧ t1.v < t2.v —
	// repair must make v non-increasing along price.
	cfg := DCRepairConfig{
		Check: DCConfig{
			Pred: func(t1, t2 types.Value) bool {
				return t1.Field("price").Float() < t2.Field("price").Float() &&
					t1.Field("discount").Float() < t2.Field("discount").Float()
			},
			Band:   func(v types.Value) float64 { return v.Field("price").Float() },
			BandOp: "<",
		},
		RepairAttr: func(v types.Value) float64 { return v.Field("discount").Float() },
		RepairCol:  "discount",
		RepairOp:   "<",
	}
	ctx := engine.NewContext(2)
	ds := engine.FromValues(ctx, []types.Value{
		li(1, 10, 0.01), li(2, 20, 0.05), li(3, 30, 0.09),
	})
	res, err := RepairDC(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Remaining != 0 {
		t.Fatalf("remaining = %d", res.Remaining)
	}
	prev := math.Inf(1)
	rows := res.Repaired.Collect()
	types.SortValues(rows)
	for _, v := range rows {
		if d := v.Field("discount").Float(); d > prev {
			t.Fatalf("repair not non-increasing: %v after %v", d, prev)
		} else {
			prev = d
		}
	}
}

func TestRepairDCConvergesOnLineitem(t *testing.T) {
	// The examples/denial dataset shape: noisy TPC-H lineitem with the real
	// rule ψ. Repair must converge to zero remaining violations.
	rows := datagen.GenLineitem(datagen.LineitemConfig{Rows: 3000, Seed: 42, NoiseDiscount: true})
	threshold := 950.0
	ctx := engine.NewContext(8)
	ds := engine.FromValues(ctx, rows)
	cfg := DCRepairConfig{
		Check: DCConfig{
			LeftFilter: func(v types.Value) bool { return v.Field("extendedprice").Float() < threshold },
			Pred: func(t1, t2 types.Value) bool {
				return t1.Field("extendedprice").Float() < t2.Field("extendedprice").Float() &&
					t1.Field("discount").Float() > t2.Field("discount").Float() &&
					t1.Field("extendedprice").Float() < threshold
			},
			Band:     func(v types.Value) float64 { return v.Field("extendedprice").Float() },
			BandOp:   "<",
			Strategy: physical.ThetaMBucket,
		},
		RepairAttr: func(v types.Value) float64 { return v.Field("discount").Float() },
		RepairCol:  "discount",
		RepairOp:   ">",
	}
	res, err := RepairDC(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations == 0 {
		t.Fatal("test data should contain violations")
	}
	if res.Remaining != 0 {
		t.Fatalf("repair did not converge: %d violations remain after %d rounds", res.Remaining, res.Rounds)
	}
	leftover, err := DCCheck(res.Repaired, cfg.Check)
	if err != nil {
		t.Fatal(err)
	}
	if leftover.Count() != 0 {
		t.Fatalf("re-check found %d violations", leftover.Count())
	}
	if res.Repaired.Count() != int64(len(rows)) {
		t.Fatal("repair changed the row count")
	}
}

func TestRepairDCChargesMetrics(t *testing.T) {
	ctx := engine.NewContext(4)
	ds := engine.FromValues(ctx, []types.Value{
		li(1, 10, 0.09), li(2, 20, 0.07), li(3, 30, 0.03),
	})
	before := ctx.Metrics().Comparisons()
	if _, err := RepairDC(ds, ruleψConfig(100)); err != nil {
		t.Fatal(err)
	}
	if ctx.Metrics().Comparisons() <= before {
		t.Fatal("repair charged no comparisons")
	}
	found := false
	for _, s := range ctx.Metrics().Stages() {
		if s.Name == "dcrepair:solve" {
			found = true
		}
	}
	if !found {
		t.Fatal("cluster solve did not run as an engine stage")
	}
}

func TestRepairDCValidation(t *testing.T) {
	ctx := engine.NewContext(1)
	ds := engine.FromValues(ctx, []types.Value{li(1, 10, 0.09)})
	bad := []DCRepairConfig{
		{}, // no RepairAttr
		{RepairAttr: func(types.Value) float64 { return 0 }, RepairCol: "x", RepairOp: "!!"},
		{RepairAttr: func(types.Value) float64 { return 0 }, RepairCol: "x", RepairOp: ">"}, // no Band
	}
	for i, cfg := range bad {
		if _, err := RepairDC(ds, cfg); err == nil {
			t.Fatalf("config %d should be rejected", i)
		}
	}
}

func TestApplyValueRepairs(t *testing.T) {
	ctx := engine.NewContext(2)
	rows := []types.Value{li(1, 10, 0.09), li(2, 20, 0.07)}
	ds := engine.FromValues(ctx, rows)
	out, changed := ApplyValueRepairs(ds, "discount", map[string]float64{
		types.Key(rows[0]): 0.01,
	})
	if changed != 1 {
		t.Fatalf("changed = %d, want 1", changed)
	}
	got := out.Collect()
	types.SortValues(got)
	if got[0].Field("discount").Float() != 0.01 {
		t.Fatalf("repair not applied: %s", got[0])
	}
	if got[1].Field("discount").Float() != 0.07 {
		t.Fatalf("untouched row changed: %s", got[1])
	}
}

func TestLowerMedianAndIsotonic(t *testing.T) {
	if m := lowerMedian([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median = %v", m)
	}
	if m := lowerMedian([]float64{4, 1, 3, 2}); m != 2 {
		t.Fatalf("even median = %v", m)
	}
	// solveCluster on an already monotone chain is the identity.
	cfg := ruleψConfig(100)
	members := []types.Value{li(1, 10, 0.01), li(2, 20, 0.02), li(3, 30, 0.03)}
	fits := solveCluster(members, cfg, map[string]interval{})
	for i, f := range fits {
		if f != members[i].Field("discount").Float() {
			t.Fatalf("monotone chain modified: %v", fits)
		}
	}
}

// TestDCCheckUnknownBandOpDisablesPruning: an unrecognized BandOp must fall
// through to "no pruning" — every strategy has to agree with the exhaustive
// cartesian ground truth rather than prune incorrectly.
func TestDCCheckUnknownBandOpDisablesPruning(t *testing.T) {
	rows := datagen.GenLineitem(datagen.LineitemConfig{Rows: 400, Seed: 5})
	pred := func(t1, t2 types.Value) bool {
		return t1.Field("extendedprice").Float() < t2.Field("extendedprice").Float() &&
			t1.Field("discount").Float() > t2.Field("discount").Float()
	}
	band := func(v types.Value) float64 { return v.Field("extendedprice").Float() }

	count := func(strategy physical.ThetaStrategy, bandOp string) int64 {
		ctx := engine.NewContext(4)
		ds := engine.FromValues(ctx, rows)
		out, err := DCCheck(ds, DCConfig{Pred: pred, Band: band, BandOp: bandOp, Strategy: strategy})
		if err != nil {
			t.Fatalf("strategy %v op %q: %v", strategy, bandOp, err)
		}
		return out.Count()
	}
	want := count(physical.ThetaCartesian, "<")
	for _, op := range []string{"between", "!!", ""} {
		for _, s := range []physical.ThetaStrategy{physical.ThetaMBucket, physical.ThetaMinMax} {
			if got := count(s, op); got != want {
				t.Fatalf("strategy %v with unknown BandOp %q pruned incorrectly: %d pairs, want %d",
					s, op, got, want)
			}
		}
	}
}
