package sink

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"

	"cleandb/internal/types"
)

// streamSink is the shared half of the byte-stream sinks (CSV, JSON lines):
// the file lifecycle, the ordered stitcher, abort, and peak accounting live
// here once; the formats contribute only their per-partition encoding.
//
// Writer-backed sinks stream through: when the destination implements a
// Flush method (http.ResponseWriter behind an HTTP response, bufio.Writer,
// …), every stitched partition is pushed to it immediately instead of
// pooling in the sink's buffer until Close. That is what lets a query server
// deliver rows to a slow-reading client while later partitions are still
// encoding — and what bounds the response memory to the partitions in
// flight. Destinations without a Flush method (plain files, byte buffers)
// keep the batched behaviour.
type streamSink struct {
	path string
	w    io.Writer

	f     *os.File
	bw    *bufio.Writer
	st    *stitcher
	flush func() error
}

// flusher is the error-returning flush shape (bufio.Writer).
type flusher interface{ Flush() error }

// httpFlusher is the error-less flush shape (http.ResponseWriter /
// http.Flusher).
type httpFlusher interface{ Flush() }

// open creates the output file (when file-backed) and wires the buffered
// writer and the ordered stitcher. Flush-capable destinations get
// flush-through streaming: each ordered partition is forwarded as soon as it
// stitches.
func (s *streamSink) open() error {
	if s.path != "" {
		f, err := os.Create(s.path)
		if err != nil {
			return err
		}
		s.f, s.w = f, f
	}
	switch fw := s.w.(type) {
	case flusher:
		s.flush = fw.Flush
	case httpFlusher:
		s.flush = func() error { fw.Flush(); return nil }
	}
	s.bw = bufio.NewWriter(s.w)
	s.st = newStitcher(func(buf []byte) error {
		if _, err := s.bw.Write(buf); err != nil {
			return err
		}
		if s.flush == nil {
			return nil
		}
		// Flush-through: drain the sink's own buffer, then push the
		// destination's (the header row written at Open rides along with the
		// first partition).
		if err := s.bw.Flush(); err != nil {
			return err
		}
		return s.flush()
	})
	return nil
}

// abandonOpen releases the half-opened output after a format's Open failed
// past file creation, so a failed Open never leaks the descriptor.
func (s *streamSink) abandonOpen(err error) error {
	if s.f != nil {
		s.f.Close()
	}
	return err
}

// put hands the stitcher one partition's encoded bytes.
func (s *streamSink) put(i int, buf []byte) error { return s.st.put(i, buf) }

// Close implements Sink: it verifies the partition sequence is complete,
// flushes, and closes the file when file-backed.
func (s *streamSink) Close() error {
	err := s.st.finish()
	if ferr := s.bw.Flush(); err == nil {
		err = ferr
	}
	if s.f != nil {
		if cerr := s.f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Abort implements Aborter: parked buffers are dropped and, for file-backed
// sinks, the partial file is deleted — rows already flushed would otherwise
// read as a complete, smaller result.
func (s *streamSink) Abort() error {
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	if rerr := os.Remove(s.path); err == nil {
		err = rerr
	}
	return err
}

// PeakBuffered reports the high-water mark of bytes parked behind an
// out-of-order partition — the streaming path's maximum extra memory beyond
// the buffer being encoded. Valid after Close.
func (s *streamSink) PeakBuffered() int64 { return s.st.peakParked() }

// collector is the shared retain-partitions half of the buffering sinks
// (colbin, in-memory): concurrent WritePartition calls stash the partition
// slices by index — shared, never copied — and readers assemble ordered
// views afterwards.
type collector struct {
	mu    sync.Mutex
	parts map[int][]types.Value
	maxi  int
}

// reset arms the collector for one export.
func (c *collector) reset() {
	c.mu.Lock()
	c.parts = map[int][]types.Value{}
	c.maxi = -1
	c.mu.Unlock()
}

// add retains partition i. Safe for concurrent calls with distinct indices.
func (c *collector) add(i int, rows []types.Value) {
	c.mu.Lock()
	c.parts[i] = rows
	if i > c.maxi {
		c.maxi = i
	}
	c.mu.Unlock()
}

// drop releases every retained partition (abort path).
func (c *collector) drop() {
	c.mu.Lock()
	c.parts, c.maxi = nil, -1
	c.mu.Unlock()
}

// ordered returns the retained partitions in index order, erroring on the
// first gap — a partition that was never written means the export was
// aborted or misdriven, and consumers that need completeness (colbin's
// encode) must not proceed.
func (c *collector) ordered() ([][]types.Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]types.Value, 0, c.maxi+1)
	for i := 0; i <= c.maxi; i++ {
		p, ok := c.parts[i]
		if !ok {
			return nil, fmt.Errorf("sink: partition %d was never written", i)
		}
		out = append(out, p)
	}
	return out, nil
}

// snapshot returns the retained partitions in index order with nil entries
// for gaps — the lenient view for consumers that tolerate aborted exports.
func (c *collector) snapshot() [][]types.Value {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]types.Value, c.maxi+1)
	for i := range out {
		out[i] = c.parts[i]
	}
	return out
}
