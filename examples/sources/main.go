// Sources: the pluggable, lazy source catalog. Registering a file records
// where the data lives without parsing a byte; the first query that
// references it triggers a partition-parallel load. The example generates a
// dirty customer CSV, converts a copy to colbin (the binary columnar
// format), registers both lazily, and shows the catalog's loaded-vs-pending
// state before and after querying.
//
//	go run ./examples/sources
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cleandb"
	"cleandb/internal/data"
	"cleandb/internal/datagen"
)

func main() {
	dir, err := os.MkdirTemp("", "cleandb-sources")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Generate a dirty customer table and write it as CSV and colbin.
	rows := datagen.GenCustomer(datagen.CustomerConfig{Rows: 5000, DupRate: 0.1, MaxDups: 10, Seed: 42}).Rows
	csvPath := filepath.Join(dir, "customer.csv")
	colbinPath := filepath.Join(dir, "customer.colbin")
	if err := writeFile(csvPath, func(f *os.File) error { return data.WriteCSV(f, rows) }); err != nil {
		log.Fatal(err)
	}
	if err := writeFile(colbinPath, func(f *os.File) error { return data.WriteColbin(f, rows) }); err != nil {
		log.Fatal(err)
	}

	db := cleandb.Open(cleandb.WithWorkers(4))
	db.RegisterCSVFile("customer", csvPath)
	db.RegisterColbinFile("customer_bin", colbinPath)

	fmt.Println("after registration (nothing parsed yet):")
	printCatalog(db)

	// The first query loads only the source it references — customer — with
	// a chunk-parallel CSV scan; customer_bin stays pending.
	res, err := db.Query(`SELECT * FROM customer c FD(c.address, c.nationkey)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFD violations in customer: %d\n\n", len(res.Rows()))
	fmt.Println("after the first query:")
	printCatalog(db)

	// An explicit Load forces the colbin source in, decoding its column
	// chunks in parallel. Its header already knew the exact row count.
	if err := db.Load(context.Background(), "customer_bin"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter Load(customer_bin):")
	printCatalog(db)
}

func printCatalog(db *cleandb.DB) {
	for _, info := range db.SourceInfos() {
		state := "pending"
		if info.Loaded {
			state = "loaded"
		}
		fmt.Printf("  %-13s %-7s %-8s rows=%-6d bytes=%d\n",
			info.Name, info.Format, state, info.Rows, info.Bytes)
	}
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
