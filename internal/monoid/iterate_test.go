package monoid

import (
	"errors"
	"testing"

	"cleandb/internal/types"
)

func TestIterationRun(t *testing.T) {
	it := Iteration{
		Init: types.Int(1),
		Step: func(_ int, s types.Value) (types.Value, error) {
			return types.Int(s.Int() * 2), nil
		},
	}
	out, err := it.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if out.Int() != 32 {
		t.Fatalf("5 doublings of 1 = %d, want 32", out.Int())
	}
}

func TestIterationUntilFixpoint(t *testing.T) {
	steps := 0
	it := Iteration{
		Init: types.Int(100),
		Step: func(_ int, s types.Value) (types.Value, error) {
			steps++
			v := s.Int() / 2
			if v < 1 {
				v = 1
			}
			return types.Int(v), nil
		},
		Until: func(prev, next types.Value) bool { return types.Equal(prev, next) },
	}
	out, err := it.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if out.Int() != 1 {
		t.Fatalf("fixpoint = %d", out.Int())
	}
	if steps >= 100 {
		t.Fatalf("should stop early at the fixpoint, took %d steps", steps)
	}
}

func TestIterationError(t *testing.T) {
	boom := errors.New("boom")
	it := Iteration{
		Init: types.Int(0),
		Step: func(i int, s types.Value) (types.Value, error) {
			if i == 2 {
				return types.Null(), boom
			}
			return s, nil
		},
	}
	if _, err := it.Run(5); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestIterateComprehension(t *testing.T) {
	// Each iteration maps state (a list) to its doubled elements:
	// bag{ x*2 | x ← state }. After 3 iterations of [1,2]: [8,16].
	comp := &Comprehension{
		M:    Bag,
		Head: &BinOp{Op: "*", L: V("x"), R: CInt(2)},
		Quals: []Qual{
			&Generator{Var: "x", Source: V("state")},
		},
	}
	out, err := IterateComprehension(NewEvaluator(), comp, "state",
		types.List(types.Int(1), types.Int(2)), 3)
	if err != nil {
		t.Fatal(err)
	}
	l := out.List()
	if len(l) != 2 || l[0].Int() != 8 || l[1].Int() != 16 {
		t.Fatalf("iterated comprehension = %s", out)
	}
}

func TestIterateComprehensionFixpoint(t *testing.T) {
	// min-capped map converges: bag{ max(x-1, 0) … } via if.
	comp := &Comprehension{
		M: Bag,
		Head: &If{
			Cond: Gt(V("x"), CInt(0)),
			Then: &BinOp{Op: "-", L: V("x"), R: CInt(1)},
			Else: CInt(0),
		},
		Quals: []Qual{&Generator{Var: "x", Source: V("state")}},
	}
	out, err := IterateComprehension(NewEvaluator(), comp, "state",
		types.List(types.Int(3), types.Int(1)), 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out.List() {
		if v.Int() != 0 {
			t.Fatalf("should converge to zeros: %s", out)
		}
	}
}
