package cleaning

import (
	"sort"

	"cleandb/internal/cluster"
	"cleandb/internal/engine"
	"cleandb/internal/textsim"
	"cleandb/internal/types"
)

// TermValidationConfig parameterizes term validation against a dictionary.
type TermValidationConfig struct {
	// Attr extracts the term to validate from a data record.
	Attr func(types.Value) string
	// Dictionary holds the clean terms.
	Dictionary []string
	// Blocker groups data terms and dictionary terms; only same-group
	// pairs are compared. nil means exhaustive comparison (the Spark SQL
	// cross-product fallback the paper describes in §8.1).
	Blocker cluster.Blocker
	// Metric and Theta configure the similarity predicate sim > Theta.
	// A zero Theta means DefaultTheta unless ThetaSet is true.
	Metric textsim.Metric
	Theta  float64
	// ThetaSet marks Theta as explicitly configured, making an intentional
	// zero threshold (suggest every candidate with any positive similarity)
	// expressible. Without it, Theta == 0 selects DefaultTheta — the same
	// sentinel contract as DedupConfig.ThetaSet.
	ThetaSet bool
}

// Suggestion couples a dirty term with a suggested dictionary repair.
type Suggestion struct {
	Term       string
	Suggestion string
	Sim        float64
}

// TermValidationResult carries the suggestions plus the phase split the
// paper's Figure 3 reports (grouping/blocking cost vs similarity cost).
type TermValidationResult struct {
	// Suggestions lists every (term, dictionary term) pair above the
	// threshold, sorted by term then descending similarity.
	Suggestions []Suggestion
	// Repairs maps each dirty term to its best suggestion.
	Repairs map[string]string
	// GroupTicks and SimTicks split the simulated cost into the blocking
	// phase and the similarity-check phase.
	GroupTicks int64
	SimTicks   int64
	// Comparisons is the number of pairwise similarity checks performed.
	Comparisons int64
}

// TermValidate validates the terms of a dataset against a dictionary
// (paper §4.4 CLUSTER BY semantics): both sides are blocked with the same
// technique, blocks with equal keys meet, and similar pairs become repair
// suggestions. Terms present in the dictionary verbatim are never reported.
func TermValidate(ds *engine.Dataset, cfg TermValidationConfig) TermValidationResult {
	if cfg.Theta == 0 && !cfg.ThetaSet {
		cfg.Theta = DefaultTheta
	}
	ctx := ds.Context()
	m := ctx.Metrics()
	startTicks := m.SimTicks()
	startComp := m.Comparisons()

	dictSet := make(map[string]struct{}, len(cfg.Dictionary))
	for _, d := range cfg.Dictionary {
		dictSet[d] = struct{}{}
	}

	// Distinct dirty terms (terms not in the dictionary).
	distinctTerms := ds.Map("tv:attr", func(v types.Value) types.Value {
		return types.String(cfg.Attr(v))
	}).AggregateByKey("tv:distinct",
		func(v types.Value) types.Value { return v },
		engine.GroupAgg{Finish: func(key types.Value, _ []types.Value) types.Value {
			if _, ok := dictSet[key.Str()]; ok {
				return types.Null()
			}
			return key
		}})

	// Block the dictionary once (broadcast side). Dictionary terms are
	// interned alongside so the similarity phase probes the pair cache with
	// integer codes; a dictionary entry reachable through several blocks (or
	// probed by several occurrences of a dirty term) pays the metric once.
	cache := textsim.NewPairCache(cfg.Metric, cfg.Theta)
	dictGroups := map[string][]string{}
	dictCodes := map[string][]uint32{}
	var allCodes []uint32
	if cfg.Blocker == nil {
		allCodes = make([]uint32, len(cfg.Dictionary))
		for i, d := range cfg.Dictionary {
			allCodes[i] = cache.Intern(d)
		}
	} else {
		for _, d := range cfg.Dictionary {
			if ctx.Err() != nil {
				break // cancelled: the blocking stage below aborts anyway
			}
			c := cache.Intern(d)
			for _, k := range cfg.Blocker.Keys(d) {
				dictGroups[k] = append(dictGroups[k], d)
				dictCodes[k] = append(dictCodes[k], c)
			}
		}
	}

	// Blocking phase: route each dirty term to its groups. The stage cost
	// is the technique's per-term work: tokenization is cheap; k-means
	// assignment computes a distance to every center (cluster.KeyCoster).
	pairSchema := types.NewSchema("bkey", "term")
	var blocked *engine.Dataset
	if cfg.Blocker == nil {
		blocked = distinctTerms.Map("tv:nogroup", func(v types.Value) types.Value {
			return types.NewRecord(pairSchema, []types.Value{types.String(""), v})
		})
	} else {
		blocked = distinctTerms.FlatMapW("tv:block", func(v types.Value) []types.Value {
			keys := cfg.Blocker.Keys(v.Str())
			out := make([]types.Value, len(keys))
			for i, k := range keys {
				out[i] = types.NewRecord(pairSchema, []types.Value{types.String(k), v})
			}
			return out
		}, func(v types.Value) int64 {
			return blockerKeyCost(cfg.Blocker, v.Str())
		})
	}
	groupTicks := m.SimTicks() - startTicks

	// Similarity phase: compare each dirty term against its groups'
	// dictionary entries (the whole dictionary when unblocked). The stage
	// cost is the candidate count, so skew in group sizes shows up as
	// straggler time.
	candidatesOf := func(p types.Value) ([]string, []uint32) {
		if cfg.Blocker == nil {
			return cfg.Dictionary, allCodes
		}
		k := p.Field("bkey").Str()
		return dictGroups[k], dictCodes[k]
	}
	sugSchema := types.NewSchema("term", "suggestion", "sim")
	matches := blocked.FlatMapW("tv:sim", func(p types.Value) []types.Value {
		var out []types.Value
		term := p.Field("term").Str()
		tc := cache.Intern(term)
		candidates, codes := candidatesOf(p)
		for i, cand := range candidates {
			if cand != term && cache.Above(tc, codes[i], term, cand) {
				out = append(out, types.NewRecord(sugSchema, []types.Value{
					types.String(term), types.String(cand),
					types.Float(cache.Sim(tc, codes[i], term, cand)),
				}))
			}
		}
		m.AddComparisons(int64(len(candidates)))
		return out
	}, func(p types.Value) int64 {
		c, _ := candidatesOf(p)
		return int64(len(c))
	})

	// Distinct suggestions (a pair may match through several blocks).
	distinct := matches.AggregateByKey("tv:distinctpairs",
		func(v types.Value) types.Value {
			return types.List(v.Field("term"), v.Field("suggestion"))
		},
		engine.GroupAgg{Finish: func(_ types.Value, group []types.Value) types.Value {
			return group[0]
		}})

	hits, misses := cache.Stats()
	m.AddSimCacheStats(hits, misses)

	res := TermValidationResult{
		Repairs:     map[string]string{},
		GroupTicks:  groupTicks,
		SimTicks:    m.SimTicks() - startTicks - groupTicks,
		Comparisons: m.Comparisons() - startComp,
	}
	// Best-repair selection is deterministic regardless of reducer partition
	// order (and hence of Workers): higher similarity wins, and equal
	// similarity breaks to the lexicographically smaller suggestion.
	type best struct {
		sim  float64
		sugg string
	}
	bestOf := map[string]best{}
	for _, v := range distinct.Collect() {
		s := Suggestion{
			Term:       v.Field("term").Str(),
			Suggestion: v.Field("suggestion").Str(),
			Sim:        v.Field("sim").Float(),
		}
		res.Suggestions = append(res.Suggestions, s)
		b, seen := bestOf[s.Term]
		if !seen || s.Sim > b.sim || (s.Sim == b.sim && s.Suggestion < b.sugg) {
			bestOf[s.Term] = best{s.Sim, s.Suggestion}
			res.Repairs[s.Term] = s.Suggestion
		}
	}
	sort.Slice(res.Suggestions, func(i, j int) bool {
		if res.Suggestions[i].Term != res.Suggestions[j].Term {
			return res.Suggestions[i].Term < res.Suggestions[j].Term
		}
		return res.Suggestions[i].Sim > res.Suggestions[j].Sim
	})
	return res
}

// blockerKeyCost estimates the work of computing a term's blocking keys:
// techniques that measure distances (k-means, canopy) pay one unit per
// center (cluster.KeyCoster); tokenizers pay a small constant.
func blockerKeyCost(b cluster.Blocker, s string) int64 {
	if kc, ok := b.(cluster.KeyCoster); ok {
		return kc.KeyCost(s)
	}
	return 2
}

// Accuracy carries precision/recall/F-score, the metrics of paper Table 3.
type Accuracy struct {
	Precision float64
	Recall    float64
	FScore    float64
	// Correct / Suggested / Errors are the raw counts.
	Correct   int
	Suggested int
	Errors    int
}

// ScoreRepairs scores suggested repairs against ground truth: precision is
// correct updates / suggested updates, recall is correct updates / total
// errors (paper §8.1).
func ScoreRepairs(repairs map[string]string, truth map[string]string) Accuracy {
	var acc Accuracy
	acc.Errors = len(truth)
	acc.Suggested = len(repairs)
	for dirty, repaired := range repairs {
		if clean, ok := truth[dirty]; ok && clean == repaired {
			acc.Correct++
		}
	}
	if acc.Suggested > 0 {
		acc.Precision = float64(acc.Correct) / float64(acc.Suggested)
	}
	if acc.Errors > 0 {
		acc.Recall = float64(acc.Correct) / float64(acc.Errors)
	}
	if acc.Precision+acc.Recall > 0 {
		acc.FScore = 2 * acc.Precision * acc.Recall / (acc.Precision + acc.Recall)
	}
	return acc
}

// ScorePairs scores detected duplicate pairs against ground-truth pairs.
// Both sides are canonicalized so order within a pair does not matter.
func ScorePairs(found [][2]string, truth [][2]string) Accuracy {
	canon := func(p [2]string) string {
		if p[0] > p[1] {
			p[0], p[1] = p[1], p[0]
		}
		return p[0] + "\x00" + p[1]
	}
	truthSet := make(map[string]struct{}, len(truth))
	for _, p := range truth {
		truthSet[canon(p)] = struct{}{}
	}
	var acc Accuracy
	acc.Errors = len(truthSet)
	seen := map[string]struct{}{}
	for _, p := range found {
		k := canon(p)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		acc.Suggested++
		if _, ok := truthSet[k]; ok {
			acc.Correct++
		}
	}
	if acc.Suggested > 0 {
		acc.Precision = float64(acc.Correct) / float64(acc.Suggested)
	}
	if acc.Errors > 0 {
		acc.Recall = float64(acc.Correct) / float64(acc.Errors)
	}
	if acc.Precision+acc.Recall > 0 {
		acc.FScore = 2 * acc.Precision * acc.Recall / (acc.Precision + acc.Recall)
	}
	return acc
}
