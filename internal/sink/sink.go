// Package sink is CleanDB's pluggable result-output layer — the mirror image
// of package source. Where a Source scans external bytes into ordered engine
// partitions, a Sink drains ordered partitions back out: one small interface
// behind which every output format (CSV, JSON lines, colbin, in-memory rows)
// receives query results without the engine ever materializing a flattened
// copy of them.
//
// The protocol is Open / WritePartition / Close. WritePartition may be called
// from multiple goroutines with distinct partition indices — that is the
// point: the expensive per-row encoding runs partition-parallel, and only the
// final byte hand-off is serialized. Formats that are a byte stream (CSV,
// JSON lines) encode each partition into its own buffer and stitch the
// buffers to the writer in partition order, so memory stays bounded by the
// partitions in flight rather than the whole result. Colbin is the holdout
// on the write side, exactly as XML is on the read side: a columnar layout
// needs every row before its first output byte, so the colbin sink retains
// partition references (no copies) and encodes column-parallel at Close.
//
// Pump is the standard driver: it derives the schema from the first row,
// opens the sink, fans the partitions out over a bounded worker pool under a
// context, and closes — the engine's ExecuteTo and the CLI's export paths
// all go through it.
package sink

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"cleandb/internal/data"
	"cleandb/internal/par"
	"cleandb/internal/types"
)

// Sink consumes one result set. The call protocol is:
//
//	Open(schema)                 once, before any write; schema holds the
//	                             column names, or nil when rows are not
//	                             records (or there are no rows)
//	WritePartition(i, rows)      once per partition index 0..n-1, possibly
//	                             from concurrent goroutines; rows must not
//	                             be mutated by the sink
//	Close()                      exactly once after the last write — also on
//	                             aborted exports, so resources are released
//
// Implementations must tolerate concurrent WritePartition calls and must
// emit partitions in index order regardless of call order. A failed Open
// must release anything it acquired before returning — the driver does not
// Close a sink whose Open errored.
type Sink interface {
	Open(schema []string) error
	WritePartition(i int, rows []types.Value) error
	Close() error
}

// Aborter is an optional Sink extension. When an export fails or is
// cancelled, Pump calls Abort instead of Close: resources are released but
// no completion work runs — a sink that defers its encode to Close (colbin)
// must not burn through it, and must not leave behind a file that looks
// finished, after a cancellation.
type Aborter interface {
	Abort() error
}

// ctxCloser is an optional Sink extension for sinks whose Close performs
// deferred work (colbin's columnar encode): Pump threads the export's
// context through so that work stays cancellable too.
type ctxCloser interface {
	CloseContext(ctx context.Context) error
}

// FromPath builds a file-backed sink, inferring the format from the path's
// extension. The file is not created until Open.
func FromPath(path string) (Sink, error) {
	switch filepath.Ext(path) {
	case ".csv":
		return NewCSVFile(path), nil
	case ".json", ".jsonl", ".ndjson":
		return NewJSONLFile(path), nil
	case ".colbin":
		return NewColbinFile(path), nil
	default:
		return nil, fmt.Errorf("sink: unknown format for %q (want .csv/.json/.jsonl/.ndjson/.colbin)", path)
	}
}

// Pump drives a complete export: it opens s with the schema of the first row
// found, writes every partition on at most workers goroutines, and closes s.
// It returns the number of rows written. Cancelling ctx stops the fan-out
// between partitions and returns ctx.Err(); every started goroutine exits
// before Pump returns, and the sink is still released — via Abort when it
// implements Aborter (so Close-time completion work is skipped on failure),
// via Close otherwise.
func Pump(ctx context.Context, s Sink, parts [][]types.Value, workers int) (int64, error) {
	if err := s.Open(schemaOf(parts)); err != nil {
		return 0, err
	}
	var rows atomic.Int64
	err := runParallel(ctx, len(parts), workers, func(i int) error {
		if err := s.WritePartition(i, parts[i]); err != nil {
			return err
		}
		rows.Add(int64(len(parts[i])))
		return nil
	})
	if err != nil {
		// The partial output is abandoned; release descriptors and buffers
		// without running any completion work, and keep the first error.
		if a, ok := s.(Aborter); ok {
			a.Abort()
		} else {
			s.Close()
		}
		return 0, err
	}
	// A Close failure (a lost flush, an incomplete partition sequence) is the
	// export failing. Sinks with deferred close-time work get the context so
	// even that stays cancellable.
	if cc, ok := s.(ctxCloser); ok {
		err = cc.CloseContext(ctx)
	} else {
		err = s.Close()
	}
	if err != nil {
		return 0, err
	}
	return rows.Load(), nil
}

// BatchSink is the optional columnar capability of a Sink: consume the
// result as one concatenated column batch with zero row boxing. Colbin
// implements it — the batch's vectors are its on-disk layout.
type BatchSink interface {
	WriteBatch(ctx context.Context, b *data.ColumnBatch) error
}

// PumpBatches drives an export straight from column batches when the sink
// can take them. It reports handled=false — without having touched the sink
// — when the sink is row-only or the batches do not share one shape; the
// caller then falls back to the row-based Pump. On the fast path it opens
// the sink, hands it the concatenated batch, and closes, mirroring Pump's
// abort-on-failure contract.
func PumpBatches(ctx context.Context, s Sink, batches []*data.ColumnBatch) (int64, bool, error) {
	bs, ok := s.(BatchSink)
	if !ok {
		return 0, false, nil
	}
	live := make([]*data.ColumnBatch, 0, len(batches))
	for _, b := range batches {
		if b != nil {
			live = append(live, b)
		}
	}
	cc := data.ConcatBatches(live)
	if cc == nil {
		return 0, false, nil
	}
	var names []string
	if cc.Schema != nil && cc.N > 0 {
		names = cc.Schema.Names
	}
	if err := s.Open(names); err != nil {
		return 0, true, err
	}
	if err := bs.WriteBatch(ctx, cc); err != nil {
		if a, ok := s.(Aborter); ok {
			a.Abort()
		} else {
			s.Close()
		}
		return 0, true, err
	}
	var err error
	if cc2, ok := s.(ctxCloser); ok {
		err = cc2.CloseContext(ctx)
	} else {
		err = s.Close()
	}
	if err != nil {
		return 0, true, err
	}
	return int64(cc.N), true, nil
}

// schemaOf returns the column names of the first record in parts, or nil
// when there are no rows or rows are not records.
func schemaOf(parts [][]types.Value) []string {
	for _, p := range parts {
		if len(p) == 0 {
			continue
		}
		if rec := p[0].Record(); rec != nil {
			return rec.Schema.Names
		}
		return nil
	}
	return nil
}

// runParallel is the shared bounded-worker driver (par.Run): first error or
// cancellation wins, every started goroutine exits before return, width is
// capped at GOMAXPROCS.
func runParallel(ctx context.Context, n, width int, f func(i int) error) error {
	return par.Run(ctx, n, width, f)
}

// stitcher serializes concurrently encoded partition buffers onto one writer
// in partition order. A buffer whose turn has come is written through
// immediately; early arrivals park until the gap before them fills. It also
// accounts the high-water mark of parked bytes — the number that proves the
// O(partitions-in-flight) memory claim of the streaming formats.
type stitcher struct {
	mu      sync.Mutex
	write   func([]byte) error
	next    int
	pending map[int][]byte
	parked  int64
	peak    int64
	err     error
}

func newStitcher(write func([]byte) error) *stitcher {
	return &stitcher{write: write, pending: map[int][]byte{}}
}

// put hands the stitcher partition i's encoded bytes. Safe for concurrent
// use; the first write error sticks and fails every later put.
func (st *stitcher) put(i int, buf []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.err != nil {
		return st.err
	}
	if i != st.next {
		st.pending[i] = buf
		st.parked += int64(len(buf))
		if st.parked > st.peak {
			st.peak = st.parked
		}
		return nil
	}
	if err := st.flush(buf); err != nil {
		return err
	}
	for {
		nb, ok := st.pending[st.next]
		if !ok {
			return nil
		}
		delete(st.pending, st.next)
		st.parked -= int64(len(nb))
		if err := st.flush(nb); err != nil {
			return err
		}
	}
}

// flush writes one buffer and advances the cursor; st.mu must be held.
func (st *stitcher) flush(buf []byte) error {
	if err := st.write(buf); err != nil {
		st.err = err
		return err
	}
	st.next++
	return nil
}

// finish reports whether every partition handed to the stitcher reached the
// writer — a parked leftover means some index was never written, which is a
// driver bug, not an I/O failure.
func (st *stitcher) finish() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.err != nil {
		return st.err
	}
	if len(st.pending) != 0 {
		gaps := make([]int, 0, len(st.pending))
		for i := range st.pending {
			gaps = append(gaps, i)
		}
		sort.Ints(gaps)
		return fmt.Errorf("sink: partition %d was never written (parked: %v)", st.next, gaps)
	}
	return nil
}

// peakParked returns the high-water mark of bytes parked behind an
// out-of-order gap.
func (st *stitcher) peakParked() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.peak
}
