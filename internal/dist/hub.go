package dist

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// hub.go is the coordinator-side barrier state machine. One hubSession exists
// per distributed query; one stageBarrier per masked stage of that query.
//
// Every member (the coordinator via localExchange, workers via the exchange
// RPC) submits the slot outputs it computed and blocks until the stage's full
// slot vector is known. Failure handling is slot reassignment: when a member
// dies — detected eagerly when its fragment RPC fails, or by the barrier
// timeout backstop — its unfilled slots move to the lowest-indexed live
// member, which is woken (or told at its next submit) to compute them and
// resubmit. The coordinator is members[0] and is never marked dead, so there
// is always a live member to take over: a session degrades one worker at a
// time all the way down to coordinator-only execution, which is exactly the
// single-process path.
//
// Slot outputs are stored and relayed as encoded wire frames (data
// package framing): the hub never decodes worker payloads, it hands each
// member the frames it is missing and lets the receiver decode into its own
// session dictionary.

// errEvicted is returned to a member the session has declared dead; the
// member's fragment fails, which is idempotent with however it was evicted.
var errEvicted = fmt.Errorf("dist: member evicted from session")

// gatherResult is what wakes a parked member: exactly one field is set.
type gatherResult struct {
	frames [][]byte // stage complete: all n slot frames
	extra  []int    // a peer died: compute these slots and resubmit
	err    error
}

// wakeMsg is a deferred channel send: barrier mutations collect wakes under
// the session lock and deliver them after unlock (channels are buffered, so
// delivery never blocks, but sending under the lock would still couple lock
// hold time to scheduler behavior).
type wakeMsg struct {
	ch chan gatherResult
	r  gatherResult
}

func deliver(wakes []wakeMsg) {
	for _, w := range wakes {
		w.ch <- w.r
	}
}

// stageBarrier collects one masked stage.
type stageBarrier struct {
	n       int
	frames  [][]byte // frames[slot] != nil once filled
	missing int
	done    bool
	// owed tracks the open slots each live member is responsible for: its
	// placement mask at creation, plus reassigned slots, minus submissions.
	owed map[string][]int
	// pending holds reassigned slots for members that were not parked when
	// the reassignment happened; delivered at their next submit.
	pending map[string][]int
	// waiters holds the one parked channel per member that has submitted and
	// awaits completion.
	waiters map[string]chan gatherResult
}

// hubSession is the barrier state of one distributed query.
type hubSession struct {
	id      string
	members []string // members[0] is the coordinator; never marked dead
	timeout time.Duration
	ctx     context.Context
	cancel  context.CancelFunc

	// onEvict, when set, runs once per newly-evicted member, outside the
	// session lock. The coordinator uses it to bump the custody cohort:
	// an eviction can leave the victim cold mid-scan while everyone else
	// finishes warm, and only a stamp change re-divides them in lockstep.
	onEvict func(member string)

	mu     sync.Mutex
	dead   map[string]bool
	stages map[string]*stageBarrier
}

func newHubSession(ctx context.Context, id string, members []string, timeout time.Duration) *hubSession {
	sctx, cancel := context.WithCancel(ctx)
	return &hubSession{
		id: id, members: members, timeout: timeout,
		ctx: sctx, cancel: cancel,
		dead:   make(map[string]bool),
		stages: make(map[string]*stageBarrier),
	}
}

// close ends the session: every parked member unblocks with the session
// context's error (or context.Canceled if it was still live).
func (s *hubSession) close() { s.cancel() }

func (s *hubSession) isDead(member string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dead[member]
}

// deadMembers returns the ids evicted so far, in member order.
func (s *hubSession) deadMembers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for _, m := range s.members {
		if s.dead[m] {
			out = append(out, m)
		}
	}
	return out
}

// gather is the barrier entry point: member submits the frames of the slots
// it computed (keyed by slot index) and blocks until the stage resolves.
// callCtx carries the caller's own liveness (a worker's RPC context); the
// session context bounds everything.
func (s *hubSession) gather(callCtx context.Context, member, stage string, n int, local map[int][]byte) ([][]byte, []int, error) {
	for {
		full, extra, ch, err := s.submit(member, stage, n, local)
		if err != nil || full != nil || len(extra) > 0 {
			return full, extra, err
		}
		r, err := s.wait(callCtx, stage, ch)
		if err != nil {
			return nil, nil, err
		}
		if r.err != nil {
			return nil, nil, r.err
		}
		if len(r.extra) > 0 {
			return nil, r.extra, nil
		}
		return r.frames, nil, nil
	}
}

// submit folds the member's frames into the barrier. It returns the full
// frame vector when this submission completes the stage, reassigned extra
// slots when some are pending for this member, or a parked channel.
func (s *hubSession) submit(member, stage string, n int, local map[int][]byte) (full [][]byte, extra []int, ch chan gatherResult, err error) {
	s.mu.Lock()
	if s.dead[member] {
		s.mu.Unlock()
		return nil, nil, nil, fmt.Errorf("%w (%s, session %s)", errEvicted, member, s.id)
	}
	if !s.isMemberLocked(member) {
		s.mu.Unlock()
		return nil, nil, nil, fmt.Errorf("dist: %s is not a member of session %s", member, s.id)
	}
	b, err := s.stageLocked(stage, n)
	if err != nil {
		s.mu.Unlock()
		return nil, nil, nil, err
	}
	for slot, frame := range local {
		if slot < 0 || slot >= n || frame == nil {
			s.mu.Unlock()
			return nil, nil, nil, fmt.Errorf("dist: stage %s: invalid slot submission %d/%d", stage, slot, n)
		}
		if b.frames[slot] == nil {
			b.frames[slot] = frame
			b.missing--
		}
	}
	if len(local) > 0 {
		b.owed[member] = dropSlots(b.owed[member], local)
	}
	if ext := b.pending[member]; len(ext) > 0 && !b.done {
		delete(b.pending, member)
		s.mu.Unlock()
		return nil, ext, nil, nil
	}
	if b.missing == 0 {
		var wakes []wakeMsg
		if !b.done {
			b.done = true
			for _, c := range b.waiters {
				wakes = append(wakes, wakeMsg{c, gatherResult{frames: b.frames}})
			}
			b.waiters = make(map[string]chan gatherResult)
		}
		frames := b.frames
		s.mu.Unlock()
		deliver(wakes)
		return frames, nil, nil, nil
	}
	c := make(chan gatherResult, 1)
	b.waiters[member] = c
	s.mu.Unlock()
	return nil, nil, c, nil
}

// wait parks on ch until the barrier resolves it. The timeout backstop
// periodically sweeps the stage for members that owe slots but never showed
// up — a crashed worker whose fragment RPC failure was not observed — and
// reassigns their slots.
func (s *hubSession) wait(callCtx context.Context, stage string, ch chan gatherResult) (gatherResult, error) {
	timer := time.NewTimer(s.timeout)
	defer timer.Stop()
	for {
		select {
		case r := <-ch:
			return r, nil
		case <-s.ctx.Done():
			return gatherResult{}, s.ctx.Err()
		case <-callCtx.Done():
			return gatherResult{}, callCtx.Err()
		case <-timer.C:
			s.sweep(stage)
			timer.Reset(s.timeout)
		}
	}
}

// sweep declares dead every member that owes the stage slots without being
// parked: after a full timeout period a live member would have either
// submitted (owing nothing) or parked (waiting on others).
func (s *hubSession) sweep(stage string) {
	s.mu.Lock()
	var wakes []wakeMsg
	var evicted []string
	if b := s.stages[stage]; b != nil && !b.done {
		var victims []string
		for m, slots := range b.owed {
			if len(slots) > 0 && b.waiters[m] == nil && m != s.members[0] && !s.dead[m] {
				victims = append(victims, m)
			}
		}
		for _, m := range victims {
			if ws, ok := s.markDeadLocked(m); ok {
				wakes = append(wakes, ws...)
				evicted = append(evicted, m)
			}
		}
	}
	s.mu.Unlock()
	deliver(wakes)
	s.notifyEvicted(evicted)
}

// markDead evicts a member (a failed fragment RPC is the eager caller) and
// reassigns its open slots in every in-flight barrier.
func (s *hubSession) markDead(member string) {
	s.mu.Lock()
	wakes, ok := s.markDeadLocked(member)
	s.mu.Unlock()
	deliver(wakes)
	if ok {
		s.notifyEvicted([]string{member})
	}
}

// notifyEvicted reports newly-evicted members to onEvict, outside s.mu.
func (s *hubSession) notifyEvicted(members []string) {
	if s.onEvict == nil {
		return
	}
	for _, m := range members {
		s.onEvict(m)
	}
}

func (s *hubSession) markDeadLocked(member string) ([]wakeMsg, bool) {
	if member == s.members[0] || s.dead[member] || !s.isMemberLocked(member) {
		return nil, false
	}
	s.dead[member] = true
	var wakes []wakeMsg
	for _, b := range s.stages {
		wakes = append(wakes, s.reassignLocked(b, member)...)
	}
	return wakes, true
}

// reassignLocked moves the open slots of a dead member to the lowest live
// member — waking it if parked, queueing otherwise — and unblocks the dead
// member's parked call, if any, with eviction.
func (s *hubSession) reassignLocked(b *stageBarrier, from string) []wakeMsg {
	var wakes []wakeMsg
	if ch := b.waiters[from]; ch != nil {
		delete(b.waiters, from)
		wakes = append(wakes, wakeMsg{ch, gatherResult{err: fmt.Errorf("%w (%s, session %s)", errEvicted, from, s.id)}})
	}
	slots := b.owed[from]
	delete(b.owed, from)
	delete(b.pending, from)
	var open []int
	for _, sl := range slots {
		if b.frames[sl] == nil {
			open = append(open, sl)
		}
	}
	if len(open) == 0 || b.done {
		return wakes
	}
	target := s.lowestLiveLocked()
	b.owed[target] = append(b.owed[target], open...)
	if ch := b.waiters[target]; ch != nil {
		delete(b.waiters, target)
		wakes = append(wakes, wakeMsg{ch, gatherResult{extra: open}})
	} else {
		b.pending[target] = append(b.pending[target], open...)
	}
	return wakes
}

func (s *hubSession) lowestLiveLocked() string {
	for _, m := range s.members {
		if !s.dead[m] {
			return m
		}
	}
	return s.members[0] // unreachable: members[0] is never dead
}

func (s *hubSession) isMemberLocked(member string) bool {
	for _, m := range s.members {
		if m == member {
			return true
		}
	}
	return false
}

// stageLocked returns the stage's barrier, creating it on first touch: owed
// slots follow placement over the *initial* membership (what every node's
// mask used), with slots of already-dead members reassigned immediately.
func (s *hubSession) stageLocked(stage string, n int) (*stageBarrier, error) {
	if b := s.stages[stage]; b != nil {
		if b.n != n {
			return nil, fmt.Errorf("dist: stage %s: slot count mismatch (%d vs %d) — diverging fragments", stage, b.n, n)
		}
		return b, nil
	}
	b := &stageBarrier{
		n: n, frames: make([][]byte, n), missing: n,
		owed:    make(map[string][]int),
		pending: make(map[string][]int),
		waiters: make(map[string]chan gatherResult),
	}
	for _, m := range s.members {
		if slots := stageSlots(stage, n, m, s.members); len(slots) > 0 {
			b.owed[m] = slots
		}
	}
	s.stages[stage] = b
	for _, m := range s.members {
		if s.dead[m] && len(b.owed[m]) > 0 {
			// Reassignment wakes nobody here: the barrier is brand new, so no
			// waiter can be parked on it yet.
			s.reassignLocked(b, m)
		}
	}
	return b, nil
}

// dropSlots removes the submitted slot indices from owed.
func dropSlots(owed []int, submitted map[int][]byte) []int {
	out := owed[:0]
	for _, sl := range owed {
		if _, ok := submitted[sl]; !ok {
			out = append(out, sl)
		}
	}
	return out
}
