package lang

import (
	"cleandb/internal/monoid"
)

// Query is the parsed form of a CleanM statement. Scalar expressions reuse
// the monoid package's expression language, so de-sugaring is structural.
type Query struct {
	Distinct bool
	// Select lists the projected expressions; empty with Star=true means *.
	Select []SelectItem
	Star   bool
	From   []TableRef
	Where  monoid.Expr
	// GroupBy carries grouping expressions; Having filters groups.
	GroupBy []monoid.Expr
	Having  monoid.Expr
	// Cleaning holds the FD / DEDUP / CLUSTER BY operators, in syntax order.
	Cleaning []CleaningOp
	// Params lists the canonical binding keys of the statement's parameter
	// placeholders in first-appearance order: "$1", "$2", ... for positional
	// `?` markers, lowercased names for `:name` markers (each named key
	// appears once even when referenced repeatedly).
	Params []string
}

// SelectItem is one projection with an optional alias.
type SelectItem struct {
	Expr  monoid.Expr
	Alias string
}

// TableRef names a catalog source with an alias.
type TableRef struct {
	Source string
	Alias  string
}

// CleaningKind discriminates cleaning operators.
type CleaningKind int

// Cleaning operator kinds.
const (
	// CleanFD is a functional-dependency check: FD(lhs, rhs).
	CleanFD CleaningKind = iota
	// CleanDedup is duplicate elimination: DEDUP(op[,metric,theta][,attrs]).
	CleanDedup
	// CleanClusterBy is term validation: CLUSTER BY(op[,metric,theta],term).
	CleanClusterBy
	// CleanDenial is a general denial constraint over a self join:
	// DENIAL(t2, <pred over t1,t2>), optionally followed by REPAIR(attr).
	CleanDenial
)

// String names the kind as it appears in queries.
func (k CleaningKind) String() string {
	switch k {
	case CleanFD:
		return "FD"
	case CleanDedup:
		return "DEDUP"
	case CleanClusterBy:
		return "CLUSTER BY"
	case CleanDenial:
		return "DENIAL"
	default:
		return "?"
	}
}

// BlockerSpec describes the filtering/blocking technique a DEDUP or CLUSTER
// BY operator selected. The pipeline resolves it against the catalog (e.g.
// fitting k-means centers from the dictionary) and registers a builtin.
type BlockerSpec struct {
	// Op is the technique name: "token_filtering", "kmeans", "length".
	Op string
	// Param is the technique parameter (q for token filtering, k for
	// k-means, bucket width for length); 0 means default.
	Param int
}

// CleaningOp is one parsed cleaning operator.
type CleaningOp struct {
	Kind CleaningKind
	// LHS/RHS hold the functional dependency sides (Kind == CleanFD).
	LHS, RHS []monoid.Expr
	// Blocker is the filtering technique (DEDUP / CLUSTER BY).
	Blocker BlockerSpec
	// Metric is the similarity metric name; empty selects Levenshtein.
	Metric string
	// Theta is the similarity threshold; 0 selects the default 0.8.
	Theta float64
	// ThetaExpr, when non-nil, is a parameter placeholder standing in for
	// Theta — the threshold is then bound at execute time, so one prepared
	// DEDUP/CLUSTER BY statement serves requests at different strictness.
	ThetaExpr monoid.Expr
	// Attrs are the dedup attributes or the cluster-by term expression.
	Attrs []monoid.Expr
	// SecondAlias names the second copy of the FROM table in a DENIAL self
	// join (the t2 role); the FROM alias plays t1.
	SecondAlias string
	// Pred is the DENIAL violation predicate over both aliases.
	Pred monoid.Expr
	// RepairAttr, when non-nil, asks the pipeline to heal the violations by
	// relaxing this attribute (the REPAIR clause). Must be a direct field
	// access on one of the two aliases.
	RepairAttr monoid.Expr
}
