// Columnar-vs-row benchmarks: the same query, the same data, the same
// worker count — once over dictionary-encoded column batches (the default)
// and once over boxed rows (WithRowExecution). The workloads are the
// join-heavy paths the columnar refactor targets: selective filters feeding
// an equi join, a theta self join (DENIAL), and the similarity-cached DEDUP
// pipeline.
//
//	go test -bench BenchmarkColumnarVsRow -benchmem
package cleandb_test

import (
	"fmt"
	"testing"

	"cleandb"
	"cleandb/internal/datagen"
)

// columnarBenchDB opens a DB in the requested mode with both relations
// registered and loaded, so the timed loop measures execution, not parsing.
func columnarBenchDB(b *testing.B, columnar bool, custRows, lineRows int) *cleandb.DB {
	b.Helper()
	opts := []cleandb.Option{cleandb.WithWorkers(8)}
	if !columnar {
		opts = append(opts, cleandb.WithRowExecution())
	}
	db := cleandb.Open(opts...)
	cust := datagen.GenCustomer(datagen.CustomerConfig{Rows: custRows, Seed: 7})
	db.RegisterRows("customer", cust.Rows)
	db.RegisterRows("lineitem", datagen.GenLineitem(datagen.LineitemConfig{
		Rows: lineRows, NoiseDiscount: true, Seed: 11,
	}))
	return db
}

func BenchmarkColumnarVsRow(b *testing.B) {
	workloads := []struct {
		name     string
		query    string
		custRows int
		lineRows int
	}{
		{
			// Vectorized scan filters: typed numeric loops over the column
			// vectors versus a compiled predicate over boxed rows.
			name:     "filter_scan",
			query:    `SELECT c.name AS n FROM customer c WHERE c.nationkey = 3`,
			custRows: 6000, lineRows: 100,
		},
		{
			// Selective filters on both inputs feeding a hash equi join —
			// the filters run as vectorized kernels (dictionary-code string
			// compares, typed numeric loops) on the columnar side.
			name: "filter_equijoin",
			query: `SELECT c.name AS n, o.orderkey AS ok FROM customer c, lineitem o
WHERE c.custkey = o.suppkey and o.discount > 0.09 and c.nationkey = 3`,
			custRows: 2000, lineRows: 6000,
		},
		{
			// Theta self join through the DENIAL pipeline: the pair
			// predicate runs as a compiled accessor chain instead of a
			// generic evaluator closure.
			name: "theta_denial",
			query: `SELECT * FROM lineitem t1
DENIAL(t2, t1.extendedprice < t2.extendedprice and t1.discount > t2.discount and t1.extendedprice < 905)`,
			custRows: 100, lineRows: 700,
		},
		{
			// Group + pairwise-similarity pipeline: per-group key/attribute
			// precomputation plus the interned pair-similarity cache.
			name:     "dedup_attribute",
			query:    `SELECT * FROM customer c DEDUP(attribute, LD, 0.8, c.address, c.name, c.phone)`,
			custRows: 1200, lineRows: 100,
		},
	}
	for _, w := range workloads {
		for _, mode := range []struct {
			name     string
			columnar bool
		}{{"columnar", true}, {"row", false}} {
			b.Run(fmt.Sprintf("%s/%s", w.name, mode.name), func(b *testing.B) {
				db := columnarBenchDB(b, mode.columnar, w.custRows, w.lineRows)
				// Warm: loads the sources and populates the plan cache.
				res, err := db.Query(w.query)
				if err != nil {
					b.Fatal(err)
				}
				rows := res.RowCount()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := db.Query(w.query)
					if err != nil {
						b.Fatal(err)
					}
					if res.RowCount() != rows {
						b.Fatalf("row count drifted: %d != %d", res.RowCount(), rows)
					}
				}
			})
		}
	}
}
